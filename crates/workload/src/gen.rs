//! End-to-end instance generation: catalog × population × Zipf preferences
//! → a valid [`Instance`].
//!
//! Utilities follow popularity: user `u`'s utility for a stream of
//! popularity rank `r` is `utility_scale · zipf_weight(r) · affinity`, with
//! a personal affinity factor. Loads on the user's primary capacity measure
//! equal the stream's access bitrate; additional measures cost one unit
//! (tuner slots). Server budgets are sized as a fraction of total demand so
//! that the selection problem is genuinely contended.

use crate::catalog::CatalogConfig;
use crate::population::PopulationConfig;
use crate::zipf::Zipf;
use mmd_core::{Instance, StreamId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of a full synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Stream catalog parameters.
    pub catalog: CatalogConfig,
    /// Client population parameters.
    pub population: PopulationConfig,
    /// Zipf exponent for stream popularity (≈1 for TV).
    pub zipf_theta: f64,
    /// Each server budget is `budget_fraction ×` the total catalog cost in
    /// that measure (floored so the costliest single stream still fits).
    pub budget_fraction: f64,
    /// Scale of utilities relative to Zipf weights.
    pub utility_scale: f64,
    /// Guarantee every stream has at least one interested user (required by
    /// the §5 normalization; see `skew::global_skew`).
    pub ensure_audience: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            catalog: CatalogConfig::default(),
            population: PopulationConfig::default(),
            zipf_theta: 1.0,
            budget_fraction: 0.3,
            utility_scale: 6.0,
            ensure_audience: true,
        }
    }
}

impl WorkloadConfig {
    /// Generates an instance deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `budget_fraction` is not in `(0, 1]` or the inner
    /// generators' preconditions fail.
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(
            self.budget_fraction > 0.0 && self.budget_fraction <= 1.0,
            "budget_fraction must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = self.catalog.generate(rng.gen());
        let clients = self.population.generate(rng.gen());
        let zipf = Zipf::new(catalog.len(), self.zipf_theta);

        // Budgets: a fraction of total demand, but no stream may exceed its
        // budget (model assumption c_i(S) <= B_i).
        let m = self.catalog.measures;
        let mut budgets = vec![0.0f64; m];
        for s in &catalog {
            for (i, b) in budgets.iter_mut().enumerate() {
                *b += s.costs[i];
            }
        }
        for (i, b) in budgets.iter_mut().enumerate() {
            let max_single = catalog.iter().map(|s| s.costs[i]).fold(0.0f64, f64::max);
            *b = (*b * self.budget_fraction).max(max_single);
        }

        let mut builder = Instance::builder(format!("workload#{seed}")).server_budgets(budgets);
        let stream_ids: Vec<StreamId> = catalog
            .iter()
            .map(|s| builder.add_stream(s.costs.clone()))
            .collect();
        let user_ids: Vec<UserId> = clients
            .iter()
            .map(|c| builder.add_user(c.utility_cap, c.capacities.clone()))
            .collect();

        let mut covered = vec![false; catalog.len()];
        for (ci, client) in clients.iter().enumerate() {
            let mut picked = BTreeSet::new();
            let want = client.degree.min(catalog.len());
            let mut guard = 0;
            while picked.len() < want && guard < want * 50 {
                picked.insert(zipf.sample(&mut rng));
                guard += 1;
            }
            for rank in picked {
                let affinity = rng.gen_range(0.5..1.5f64);
                let utility = self.utility_scale * zipf.weight(rank) * affinity;
                let loads = user_loads(client.capacities.len(), &catalog[rank].costs);
                builder
                    .add_interest(user_ids[ci], stream_ids[rank], utility, loads)
                    .expect("picked ranks are unique per user");
                covered[rank] = true;
            }
        }

        if self.ensure_audience && !clients.is_empty() {
            for (rank, done) in covered.iter().enumerate().filter(|(_, &d)| !d) {
                let _ = done;
                let ci = rng.gen_range(0..clients.len());
                let utility = self.utility_scale * self.catalog_weight_floor(&zipf, rank);
                let loads = user_loads(clients[ci].capacities.len(), &catalog[rank].costs);
                // The pair cannot already exist: the stream had no audience.
                builder
                    .add_interest(user_ids[ci], stream_ids[rank], utility, loads)
                    .expect("uncovered stream has no existing interest");
            }
        }
        builder.build().expect("generated workloads are valid")
    }

    fn catalog_weight_floor(&self, zipf: &Zipf, rank: usize) -> f64 {
        zipf.weight(rank).max(1e-3)
    }
}

fn user_loads(mc: usize, costs: &[f64]) -> Vec<f64> {
    let mut loads = Vec::with_capacity(mc);
    if mc >= 1 {
        // Primary measure: access-link bandwidth = stream bitrate; further
        // measures cost one tuner/decode slot per stream.
        loads.push(costs[0]);
        loads.extend(std::iter::repeat_n(1.0, mc - 1));
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmd_core::skew;

    #[test]
    fn generates_valid_contended_instance() {
        let cfg = WorkloadConfig::default();
        let inst = cfg.generate(42);
        assert_eq!(inst.num_streams(), cfg.catalog.streams);
        assert_eq!(inst.num_users(), cfg.population.users);
        assert!(inst.num_interests() > 0);
        // Budgets are tight: the whole catalog must not fit.
        let total: f64 = inst.streams().map(|s| inst.cost(s, 0)).sum();
        assert!(total > inst.budget(0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn every_stream_has_audience_when_ensured() {
        let cfg = WorkloadConfig::default();
        let inst = cfg.generate(3);
        for s in inst.streams() {
            assert!(!inst.audience(s).is_empty(), "stream {s} has no audience");
        }
        // Therefore the §5 normalization succeeds.
        assert!(skew::global_skew(&inst).is_ok());
    }

    #[test]
    fn popular_streams_attract_more_users() {
        let mut cfg = WorkloadConfig::default();
        cfg.catalog.streams = 40;
        cfg.population.users = 200;
        let inst = cfg.generate(11);
        let head: usize = (0..5).map(|r| inst.audience(StreamId::new(r)).len()).sum();
        let tail: usize = (35..40)
            .map(|r| inst.audience(StreamId::new(r)).len())
            .sum();
        assert!(head > tail, "head {head} should exceed tail {tail}");
    }

    #[test]
    fn multi_measure_workload_is_well_formed() {
        let mut cfg = WorkloadConfig::default();
        cfg.catalog.measures = 4;
        cfg.population.user_measures = 2;
        let inst = cfg.generate(5);
        assert_eq!(inst.num_measures(), 4);
        assert_eq!(inst.max_user_measures(), 2);
        // All loads within capacities (builder would have dropped others).
        assert!(inst.num_interests() > 0);
    }
}
