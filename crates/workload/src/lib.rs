//! Seeded synthetic workload generators for `mmd`.
//!
//! The paper evaluates nothing empirically (it is a theory paper), so this
//! crate supplies the workloads its theorems quantify over:
//!
//! * [`catalog`] / [`population`] / [`gen`] — realistic cable-TV/IPTV
//!   instances: SD/HD/UHD stream classes with bandwidth, processing, port
//!   and licensing costs; household/gateway clients with access-link
//!   capacities and revenue caps; Zipf-popular preferences.
//! * [`special`] — the paper's own adversarial constructions: the §4.2
//!   tightness instance, the §2.2 "greedy hole", unit-skew and
//!   target-skew families, and small-streams families satisfying the
//!   Theorem 1.2 hypothesis.
//! * [`clustered`] — planted-community instances (regional catalogs and
//!   their audiences) with tunable cross-links and contention, the workload
//!   family behind the sharded solver's differential tests and the `xl`
//!   perf rung.
//! * [`trace`] — Poisson arrival / heavy-tailed duration traces for the
//!   online algorithm (§5) and the discrete-event simulator.
//! * [`churn`] — typed update traces (arrivals/departures, interest drift,
//!   budget re-provisioning) in the language of `mmd_core::ingest`, valid
//!   by construction, for the incremental re-solve engine.
//! * [`web`] — web-scale catalogs: 10⁵–10⁶ users with sparse Zipf-popular
//!   interest sets, the regime behind the compact instance lanes and the
//!   two-level sharded solver.
//! * [`zipf`] — the Zipf sampler underlying stream popularity.
//!
//! All generators are deterministic given a `u64` seed.

pub mod catalog;
pub mod churn;
pub mod clustered;
pub mod gen;
pub mod population;
pub mod special;
pub mod trace;
pub mod web;
pub mod zipf;

pub use catalog::{CatalogConfig, StreamClass};
pub use churn::ChurnConfig;
pub use clustered::ClusteredConfig;
pub use gen::WorkloadConfig;
pub use population::PopulationConfig;
pub use trace::{ArrivalTrace, TraceConfig, TraceEvent, TraceEventKind};
pub use web::WebConfig;
