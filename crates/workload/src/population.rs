//! Client populations: households and neighborhood video gateways.
//!
//! Per §1, a client is "an individual household, or a neighborhood video
//! gateway"; its utility cap models the revenue / satisfaction it can
//! generate, and its capacity measures model limited resources — primarily
//! the incoming access-link bandwidth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Archetype of a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// A single household: modest access link, low utility cap, few
    /// interests.
    Household,
    /// A neighborhood gateway aggregating many households: fat link, high
    /// cap, many interests.
    Gateway,
}

/// One generated client.
#[derive(Clone, Debug)]
pub struct Client {
    /// Archetype.
    pub kind: ClientKind,
    /// Utility cap `W_u`.
    pub utility_cap: f64,
    /// Capacities `K^u_j` (length = configured user measures).
    pub capacities: Vec<f64>,
    /// Number of catalog streams this client is interested in.
    pub degree: usize,
}

/// Configuration of a client population.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Number of clients.
    pub users: usize,
    /// Fraction of gateways (the rest are households).
    pub gateway_fraction: f64,
    /// Number of capacity measures per user `m_c` (0 = utility-capped
    /// only). Measure 0 is the access link in Mb/s; further measures are
    /// set-top tuner counts etc.
    pub user_measures: usize,
    /// Household access link range in Mb/s.
    pub household_link: (f64, f64),
    /// Gateway access link range in Mb/s.
    pub gateway_link: (f64, f64),
    /// Household utility cap range.
    pub household_cap: (f64, f64),
    /// Gateway utility cap range.
    pub gateway_cap: (f64, f64),
    /// Interests per household (min, max).
    pub household_degree: (usize, usize),
    /// Interests per gateway (min, max).
    pub gateway_degree: (usize, usize),
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: 40,
            gateway_fraction: 0.1,
            user_measures: 1,
            household_link: (15.0, 50.0),
            gateway_link: (100.0, 400.0),
            household_cap: (3.0, 10.0),
            gateway_cap: (30.0, 80.0),
            household_degree: (3, 10),
            gateway_degree: (10, 30),
        }
    }
}

impl PopulationConfig {
    /// Generates the population deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `users == 0` or `gateway_fraction ∉ [0, 1]`.
    pub fn generate(&self, seed: u64) -> Vec<Client> {
        assert!(self.users > 0, "population must have at least one user");
        assert!(
            (0.0..=1.0).contains(&self.gateway_fraction),
            "gateway_fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.users);
        for _ in 0..self.users {
            let kind = if rng.gen_range(0.0..1.0f64) < self.gateway_fraction {
                ClientKind::Gateway
            } else {
                ClientKind::Household
            };
            let (link, cap, degree) = match kind {
                ClientKind::Household => (
                    self.household_link,
                    self.household_cap,
                    self.household_degree,
                ),
                ClientKind::Gateway => (self.gateway_link, self.gateway_cap, self.gateway_degree),
            };
            let mut capacities = Vec::with_capacity(self.user_measures);
            if self.user_measures >= 1 {
                capacities.push(rng.gen_range(link.0..=link.1));
            }
            for extra in 1..self.user_measures {
                // Secondary resources (tuners, decode slots): small integers.
                let tuners = rng.gen_range(2..=6) as f64 * extra as f64;
                capacities.push(tuners);
            }
            out.push(Client {
                kind,
                utility_cap: rng.gen_range(cap.0..=cap.1),
                capacities,
                degree: rng.gen_range(degree.0..=degree.1.max(degree.0)),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_users() {
        let cfg = PopulationConfig {
            users: 17,
            user_measures: 2,
            ..PopulationConfig::default()
        };
        let pop = cfg.generate(0);
        assert_eq!(pop.len(), 17);
        for c in &pop {
            assert_eq!(c.capacities.len(), 2);
            assert!(c.utility_cap > 0.0);
            assert!(c.degree >= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PopulationConfig::default();
        let a = cfg.generate(5);
        let b = cfg.generate(5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.capacities, y.capacities);
            assert_eq!(x.utility_cap, y.utility_cap);
        }
    }

    #[test]
    fn gateways_are_bigger() {
        let cfg = PopulationConfig {
            users: 600,
            gateway_fraction: 0.5,
            ..PopulationConfig::default()
        };
        let pop = cfg.generate(2);
        let avg = |k: ClientKind| {
            let v: Vec<&Client> = pop.iter().filter(|c| c.kind == k).collect();
            let s: f64 = v.iter().map(|c| c.capacities[0]).sum();
            s / v.len() as f64
        };
        assert!(avg(ClientKind::Gateway) > avg(ClientKind::Household) * 2.0);
    }

    #[test]
    fn zero_measures_means_cap_only() {
        let cfg = PopulationConfig {
            user_measures: 0,
            ..PopulationConfig::default()
        };
        let pop = cfg.generate(1);
        assert!(pop.iter().all(|c| c.capacities.is_empty()));
    }
}
