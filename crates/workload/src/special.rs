//! The paper's own adversarial constructions and theorem-targeted instance
//! families.

use mmd_core::{Instance, StreamId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The §4.2 **tightness instance**: `m` server budgets, one user with `m_c`
/// capacities, `m + m_c − 1` streams, on which the §4 reduction's output
/// transformation can lose a full `m·m_c` factor (OPT = `m`, the transformed
/// solution keeps only `1/m_c`).
///
/// Uses the paper's `ε = 1/m²`, `ε' = 1/m_c²`.
///
/// # Panics
///
/// Panics if `m == 0` or `mc == 0`.
pub fn tightness_instance(m: usize, mc: usize) -> Instance {
    tightness_instance_biased(m, mc, 0.0)
}

/// [`tightness_instance`] with the small streams' utilities raised by a
/// relative `bias`, so the output transformation's tie between the
/// singleton groups (utility 1) and the small-stream group (utility
/// `1 + bias`) breaks the way the paper's §4.2 analysis assumes ("say that
/// S₁² survives") — exhibiting the full `m·m_c` loss.
///
/// # Panics
///
/// Panics if `m == 0`, `mc == 0`, or `bias < 0`.
pub fn tightness_instance_biased(m: usize, mc: usize, bias: f64) -> Instance {
    assert!(m >= 1 && mc >= 1, "need m >= 1 and mc >= 1");
    assert!(bias >= 0.0, "bias must be nonnegative");
    // The paper's "small enough" eps = 1/m^2 (resp. 1/mc^2), capped so the
    // degenerate m = 1 (mc = 1) cases still satisfy c_i(S) <= B_i.
    let eps = (1.0 / (m * m) as f64).min(0.25);
    let eps_p = (1.0 / (mc * mc) as f64).min(0.25);
    let n_streams = m + mc - 1;

    let mut b = Instance::builder(format!("tightness(m={m},mc={mc})")).server_budgets(vec![1.0; m]);
    // Paper indices: streams S_1 .. S_{m-1} have c_i(S_j) = 1/2 + eps iff
    // i == j; streams S_m .. S_{m+mc-1} have c_m(S_j) = (1/2 + eps)/mc.
    // The Fig. 3 decomposition lays streams out "in arbitrary order" — the
    // §4.2 analysis picks the adversarial order where the small streams sit
    // together in one group, so we emit them first (ids 0..mc-1).
    let mut paper_js: Vec<usize> = (m..=n_streams).collect();
    paper_js.extend(1..m);
    let mut streams = Vec::with_capacity(n_streams);
    for &j in &paper_js {
        let mut costs = vec![0.0; m];
        if j < m {
            costs[j - 1] = 0.5 + eps;
        } else {
            costs[m - 1] = (0.5 + eps) / mc as f64;
        }
        streams.push(b.add_stream(costs));
    }
    let user = b.add_user(f64::INFINITY, vec![1.0; mc]);
    for (idx, &s) in streams.iter().enumerate() {
        let j = paper_js[idx];
        let mut loads = vec![0.0; mc];
        if j >= m {
            // k^u_i(S_j) = 1/2 + eps' iff j == m + i - 1.
            loads[j - m] = 0.5 + eps_p;
        }
        let w = if j < m { 1.0 } else { (1.0 + bias) / mc as f64 };
        b.add_interest(user, s, w, loads)
            .expect("tightness pairs are unique");
    }
    b.build().expect("tightness instance is valid")
}

/// The §2.2 **greedy hole**: a tiny stream with the best cost effectiveness
/// blocks a budget-filling stream of far larger absolute utility. Plain
/// greedy scores `tiny_utility`; the fixed greedy (via `A_max`) scores
/// `huge_utility`.
pub fn greedy_hole() -> Instance {
    let mut b = Instance::builder("greedy-hole").server_budgets(vec![100.0]);
    let tiny = b.add_stream(vec![1.0]);
    let huge = b.add_stream(vec![100.0]);
    let u = b.add_user(f64::INFINITY, vec![]);
    b.add_interest(u, tiny, 10.0, vec![]).unwrap();
    b.add_interest(u, huge, 500.0, vec![]).unwrap();
    b.build().expect("hole instance is valid")
}

/// A **decoy** family for the baseline experiments: the first
/// `decoys` streams (low ids = early arrivals) are expensive and nearly
/// worthless; the rest are cheap gems. First-come-first-served admission
/// spends the budget on decoys; utility-aware algorithms skip them.
pub fn decoy_smd(decoys: usize, gems: usize, users: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Instance::builder(format!("decoy#{seed}")).server_budgets(vec![100.0]);
    let mut streams = Vec::new();
    for _ in 0..decoys {
        streams.push((b.add_stream(vec![rng.gen_range(6.0..10.0)]), true));
    }
    for _ in 0..gems {
        streams.push((b.add_stream(vec![rng.gen_range(2.0..3.0)]), false));
    }
    for _ in 0..users {
        let u = b.add_user(f64::INFINITY, vec![]);
        for &(s, decoy) in &streams {
            if rng.gen_range(0.0..1.0f64) < 0.3 {
                let w = if decoy {
                    rng.gen_range(0.05..0.2)
                } else {
                    rng.gen_range(3.0..8.0)
                };
                b.add_interest(u, s, w, vec![]).unwrap();
            }
        }
    }
    b.build().expect("decoy family is valid")
}

/// Parameters for the random smd families below.
#[derive(Clone, Debug)]
pub struct SmdFamilyConfig {
    /// Number of streams.
    pub streams: usize,
    /// Number of users.
    pub users: usize,
    /// Probability that a (user, stream) pair is an interest.
    pub density: f64,
    /// Server budget as a fraction of total stream cost.
    pub budget_fraction: f64,
}

impl Default for SmdFamilyConfig {
    fn default() -> Self {
        SmdFamilyConfig {
            streams: 10,
            users: 6,
            density: 0.6,
            budget_fraction: 0.4,
        }
    }
}

/// Random **unit-skew** smd instance (the §2 setting): every user's load
/// equals its utility and the capacity equals the utility cap, so the local
/// skew is exactly 1.
pub fn unit_skew_smd(cfg: &SmdFamilyConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Instance::builder(format!("unit-skew#{seed}"));
    let costs: Vec<f64> = (0..cfg.streams)
        .map(|_| rng.gen_range(1.0..5.0f64))
        .collect();
    let budget = (costs.iter().sum::<f64>() * cfg.budget_fraction)
        .max(costs.iter().fold(0.0f64, |a, &c| a.max(c)));
    b = b.server_budgets(vec![budget]);
    let streams: Vec<StreamId> = costs.iter().map(|&c| b.add_stream(vec![c])).collect();
    for _ in 0..cfg.users {
        let cap = rng.gen_range(2.0..8.0f64);
        let u = b.add_user(cap, vec![cap]);
        for &s in &streams {
            if rng.gen_range(0.0..1.0f64) < cfg.density {
                let w = rng.gen_range(0.5..3.0f64).min(cap);
                b.add_interest(u, s, w, vec![w])
                    .expect("unique pair per loop");
            }
        }
    }
    b.build().expect("unit-skew family is valid")
}

/// Random smd instance with local skew (approximately) equal to
/// `target_alpha`: per-interest utility-per-load ratios are drawn
/// log-uniformly from `[1, target_alpha]`, and the extreme ratios are pinned
/// so the measured skew matches the target.
pub fn target_skew_smd(cfg: &SmdFamilyConfig, target_alpha: f64, seed: u64) -> Instance {
    assert!(target_alpha >= 1.0, "alpha must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Instance::builder(format!("skew{target_alpha}#{seed}"));
    let costs: Vec<f64> = (0..cfg.streams)
        .map(|_| rng.gen_range(1.0..5.0f64))
        .collect();
    let budget = (costs.iter().sum::<f64>() * cfg.budget_fraction)
        .max(costs.iter().fold(0.0f64, |a, &c| a.max(c)));
    b = b.server_budgets(vec![budget]);
    let streams: Vec<StreamId> = costs.iter().map(|&c| b.add_stream(vec![c])).collect();
    let log_a = target_alpha.log2();
    for ui in 0..cfg.users {
        let cap = rng.gen_range(4.0..12.0f64);
        let u = b.add_user(f64::INFINITY, vec![cap]);
        let mut pair_idx = 0usize;
        for &s in &streams {
            if rng.gen_range(0.0..1.0f64) < cfg.density {
                // Pin the first user's first two pairs to the extremes so
                // the instance's measured alpha hits the target.
                let ratio = if ui == 0 && pair_idx == 0 {
                    1.0
                } else if ui == 0 && pair_idx == 1 {
                    target_alpha
                } else {
                    2f64.powf(rng.gen_range(0.0..=log_a.max(f64::MIN_POSITIVE)))
                };
                let k = rng.gen_range(0.5..(cap / 2.0));
                let w = k * ratio;
                b.add_interest(u, s, w, vec![k])
                    .expect("unique pair per loop");
                pair_idx += 1;
            }
        }
    }
    b.build().expect("target-skew family is valid")
}

/// Random **small-streams** mmd instance satisfying the Theorem 1.2
/// hypothesis `c_i(S) ≤ B_i / log µ` (and likewise for user capacities):
/// budgets are sized after computing `µ` so the hypothesis holds by
/// construction.
pub fn small_streams(streams: usize, users: usize, measures: usize, seed: u64) -> Instance {
    assert!(streams > 0 && users > 0 && (1..=4).contains(&measures));
    let mut rng = StdRng::seed_from_u64(seed);
    // Raw material: costs, utilities, loads.
    let costs: Vec<Vec<f64>> = (0..streams)
        .map(|_| (0..measures).map(|_| rng.gen_range(0.5..2.0f64)).collect())
        .collect();
    // Interests: every user wants a random half of the streams.
    let mut interests: Vec<Vec<(usize, f64, f64)>> = Vec::with_capacity(users);
    for _ in 0..users {
        let mut list = Vec::new();
        for (si, _) in costs.iter().enumerate() {
            if rng.gen_range(0.0..1.0f64) < 0.5 {
                let w = rng.gen_range(0.5..4.0f64);
                let k = rng.gen_range(0.5..2.0f64);
                list.push((si, w, k));
            }
        }
        if list.is_empty() {
            let w = rng.gen_range(0.5..4.0f64);
            list.push((0, w, rng.gen_range(0.5..2.0f64)));
        }
        interests.push(list);
    }
    // Ensure audiences (required by the eq.-(1) normalization).
    for si in 0..streams {
        if !interests.iter().any(|l| l.iter().any(|&(s, _, _)| s == si)) {
            let w = rng.gen_range(0.5..4.0f64);
            interests[0].push((si, w, rng.gen_range(0.5..2.0f64)));
        }
    }

    // Phase 1: loose budgets/capacities, just to measure gamma.
    let loose = build_small(&costs, &interests, None, seed);
    let gskew = mmd_core::skew::global_skew(&loose).expect("audiences ensured");
    let mu = 2.0 * gskew.gamma * gskew.budget_count as f64 + 2.0;
    let log_mu = mu.log2();

    // Phase 2: budgets B_i = margin · log µ · max_i cost so smallness holds.
    build_small(&costs, &interests, Some(log_mu * 1.05), seed)
}

fn build_small(
    costs: &[Vec<f64>],
    interests: &[Vec<(usize, f64, f64)>],
    budget_factor: Option<f64>,
    seed: u64,
) -> Instance {
    let measures = costs[0].len();
    let mut budgets = vec![0.0f64; measures];
    for (i, budget) in budgets.iter_mut().enumerate() {
        let max_c = costs.iter().map(|c| c[i]).fold(0.0f64, f64::max);
        *budget = match budget_factor {
            Some(f) => max_c * f,
            // Loose: everything fits many times over.
            None => max_c * costs.len() as f64 * 10.0,
        };
    }
    let mut b = Instance::builder(format!("small-streams#{seed}")).server_budgets(budgets);
    let stream_ids: Vec<StreamId> = costs.iter().map(|c| b.add_stream(c.clone())).collect();
    let mut user_ids: Vec<UserId> = Vec::with_capacity(interests.len());
    for list in interests {
        let max_k = list.iter().map(|&(_, _, k)| k).fold(0.0f64, f64::max);
        let cap = match budget_factor {
            Some(f) => max_k * f,
            None => max_k * costs.len() as f64 * 10.0,
        };
        user_ids.push(b.add_user(f64::INFINITY, vec![cap]));
    }
    for (ui, list) in interests.iter().enumerate() {
        for &(si, w, k) in list {
            b.add_interest(user_ids[ui], stream_ids[si], w, vec![k])
                .expect("interest lists are deduplicated by construction");
        }
    }
    b.build().expect("small-streams family is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmd_core::skew::local_skew;

    #[test]
    fn tightness_instance_matches_paper() {
        let m = 3;
        let mc = 2;
        let inst = tightness_instance(m, mc);
        assert_eq!(inst.num_streams(), m + mc - 1);
        assert_eq!(inst.num_measures(), m);
        assert_eq!(inst.max_user_measures(), mc);
        // OPT assigns everything: total utility (m-1) + mc * (1/mc) = m.
        let mut a = mmd_core::Assignment::for_instance(&inst);
        let u = UserId::new(0);
        for s in inst.streams() {
            a.assign(u, s);
        }
        assert!(a.check_feasible(&inst).is_ok(), "OPT must be feasible");
        assert!((a.utility(&inst) - m as f64).abs() < 1e-9);
    }

    #[test]
    fn tightness_m1_mc1_degenerates() {
        let inst = tightness_instance(1, 1);
        assert_eq!(inst.num_streams(), 1);
    }

    #[test]
    fn hole_shape() {
        let inst = greedy_hole();
        assert_eq!(inst.num_streams(), 2);
        let g = mmd_core::algo::greedy(&inst).unwrap();
        assert!((g.utility - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unit_skew_family_has_skew_one() {
        for seed in 0..5 {
            let inst = unit_skew_smd(&SmdFamilyConfig::default(), seed);
            assert!(
                (local_skew(&inst) - 1.0).abs() < 1e-9,
                "seed {seed}: skew {}",
                local_skew(&inst)
            );
            assert!(inst.is_single_budget());
        }
    }

    #[test]
    fn target_skew_family_hits_target() {
        for &alpha in &[2.0, 8.0, 64.0] {
            let inst = target_skew_smd(&SmdFamilyConfig::default(), alpha, 3);
            let measured = local_skew(&inst);
            assert!(
                measured <= alpha * (1.0 + 1e-9) && measured >= alpha * 0.99,
                "target {alpha}, measured {measured}"
            );
        }
    }

    #[test]
    fn small_streams_satisfy_theorem_hypothesis() {
        let inst = small_streams(40, 5, 2, 9);
        let alloc = mmd_core::algo::OnlineAllocator::new(&inst).unwrap();
        let rep = alloc.smallness();
        assert!(rep.ok, "smallness violated {} times", rep.violations);
    }

    #[test]
    fn decoy_family_punishes_fcfs() {
        let inst = decoy_smd(20, 20, 10, 1);
        let order: Vec<StreamId> = inst.streams().collect();
        let fcfs = mmd_core::algo::baselines::threshold_admission(&inst, &order, 1.0);
        let smart =
            mmd_core::algo::solve_smd_unit(&inst, mmd_core::algo::Feasibility::SemiFeasible)
                .unwrap();
        assert!(
            smart.utility > 3.0 * fcfs.utility(&inst),
            "smart {} vs fcfs {}",
            smart.utility,
            fcfs.utility(&inst)
        );
    }

    #[test]
    fn families_are_deterministic() {
        let cfg = SmdFamilyConfig::default();
        assert_eq!(unit_skew_smd(&cfg, 1), unit_skew_smd(&cfg, 1));
        assert_eq!(
            target_skew_smd(&cfg, 16.0, 2),
            target_skew_smd(&cfg, 16.0, 2)
        );
        assert_eq!(small_streams(10, 3, 2, 3), small_streams(10, 3, 2, 3));
    }
}
