//! Online arrival/departure traces for the §5 algorithm and the simulator.
//!
//! Streams become available at Poisson arrival times and stay up for an
//! exponential or Pareto (heavy-tailed) duration — the footnote-1 scenario
//! of streams with finite durations whose requirements are known at
//! arrival.

use mmd_core::StreamId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// What happens at a trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The stream becomes available and is offered to the policy.
    Arrival,
    /// The stream ends and frees its resources.
    Departure,
}

/// One timestamped event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event time (arbitrary units).
    pub time: f64,
    /// The stream concerned.
    pub stream: StreamId,
    /// Arrival or departure.
    pub kind: TraceEventKind,
}

/// A time-ordered sequence of arrivals and departures over an instance's
/// streams. Each stream arrives exactly once.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalTrace {
    events: Vec<TraceEvent>,
    horizon: f64,
}

impl ArrivalTrace {
    /// All events in nondecreasing time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Time of the last event.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The streams in arrival order (for batch-online algorithms).
    pub fn arrival_order(&self) -> Vec<StreamId> {
        self.events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Arrival)
            .map(|e| e.stream)
            .collect()
    }
}

/// Configuration for trace generation.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Mean arrivals per time unit (Poisson process).
    pub arrival_rate: f64,
    /// Mean stream duration.
    pub mean_duration: f64,
    /// Draw durations from a Pareto(1.5) tail instead of an exponential.
    pub heavy_tail: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            arrival_rate: 1.0,
            mean_duration: 20.0,
            heavy_tail: false,
        }
    }
}

impl TraceConfig {
    /// Generates a trace over `n_streams` streams, deterministically from
    /// `seed`. Streams arrive in a shuffled order.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_rate` or `mean_duration` is not positive.
    pub fn generate(&self, n_streams: usize, seed: u64) -> ArrivalTrace {
        assert!(self.arrival_rate > 0.0, "arrival_rate must be positive");
        assert!(self.mean_duration > 0.0, "mean_duration must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<StreamId> = (0..n_streams).map(StreamId::new).collect();
        order.shuffle(&mut rng);

        let mut events = Vec::with_capacity(2 * n_streams);
        let mut t = 0.0f64;
        for s in order {
            // Exponential interarrival via inverse transform.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / self.arrival_rate;
            let duration = if self.heavy_tail {
                // Pareto(alpha = 1.5) with mean = alpha/(alpha-1) * xm = 3 xm.
                let xm = self.mean_duration / 3.0;
                let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                xm / v.powf(1.0 / 1.5)
            } else {
                let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -v.ln() * self.mean_duration
            };
            events.push(TraceEvent {
                time: t,
                stream: s,
                kind: TraceEventKind::Arrival,
            });
            events.push(TraceEvent {
                time: t + duration,
                stream: s,
                kind: TraceEventKind::Departure,
            });
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        let horizon = events.last().map_or(0.0, |e| e.time);
        ArrivalTrace { events, horizon }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stream_arrives_once_and_departs_once() {
        let trace = TraceConfig::default().generate(30, 4);
        let mut arrivals = vec![0usize; 30];
        let mut departures = vec![0usize; 30];
        for e in trace.events() {
            match e.kind {
                TraceEventKind::Arrival => arrivals[e.stream.index()] += 1,
                TraceEventKind::Departure => departures[e.stream.index()] += 1,
            }
        }
        assert!(arrivals.iter().all(|&c| c == 1));
        assert!(departures.iter().all(|&c| c == 1));
    }

    #[test]
    fn events_are_time_ordered() {
        let trace = TraceConfig::default().generate(50, 5);
        for pair in trace.events().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(trace.horizon() >= trace.events().last().unwrap().time);
    }

    #[test]
    fn departure_follows_arrival_per_stream() {
        let trace = TraceConfig::default().generate(20, 6);
        let mut arrived = [false; 20];
        for e in trace.events() {
            match e.kind {
                TraceEventKind::Arrival => arrived[e.stream.index()] = true,
                TraceEventKind::Departure => {
                    assert!(arrived[e.stream.index()], "departure before arrival")
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.generate(10, 1), cfg.generate(10, 1));
        assert_ne!(cfg.generate(10, 1), cfg.generate(10, 2));
    }

    #[test]
    fn arrival_order_lists_all_streams() {
        let trace = TraceConfig::default().generate(12, 7);
        let mut order = trace.arrival_order();
        order.sort_unstable();
        let expected: Vec<StreamId> = (0..12).map(StreamId::new).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn heavy_tail_durations_have_outliers() {
        let cfg = TraceConfig {
            heavy_tail: true,
            mean_duration: 10.0,
            ..TraceConfig::default()
        };
        let trace = cfg.generate(400, 8);
        // Find the max duration: heavy tails should exceed several means.
        let mut arrival_time = vec![0.0; 400];
        let mut max_duration = 0.0f64;
        for e in trace.events() {
            match e.kind {
                TraceEventKind::Arrival => arrival_time[e.stream.index()] = e.time,
                TraceEventKind::Departure => {
                    max_duration = max_duration.max(e.time - arrival_time[e.stream.index()]);
                }
            }
        }
        assert!(max_duration > 30.0, "max duration {max_duration}");
    }

    #[test]
    #[should_panic(expected = "arrival_rate")]
    fn rejects_bad_rate() {
        TraceConfig {
            arrival_rate: 0.0,
            ..TraceConfig::default()
        }
        .generate(1, 0);
    }
}
