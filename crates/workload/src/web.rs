//! Web-scale catalog workloads: 10⁵–10⁶ users with sparse interest sets
//! over a Zipf-popular catalog.
//!
//! This is the million-user regime the compact instance lanes
//! ([`mmd_core::instance::LaneMode`]) and the two-level sharded solver
//! (`ShardConfig::super_shards`) exist for: each user follows only a
//! handful of streams, but catalog popularity is heavily skewed
//! ([`Zipf`] over ranks), so the head streams draw
//! audiences of hundreds of thousands while the tail is near-empty. The
//! instances are single-measure with utility-capped users, like the
//! clustered family, so every solver accepts them.
//!
//! All generation is deterministic per seed, and [`WebConfig::lane_mode`]
//! selects the instance layout: [`LaneMode::Exact`] for the bit-exact
//! `f64` lanes, [`LaneMode::Compact`] for the quantized `u32`/`f32` lanes
//! whose certified error the solver folds into its upper bound.

use mmd_core::{Instance, LaneMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of a web workload.
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Number of users (the paper's "clients"; 10⁵–10⁶ in this family).
    pub users: usize,
    /// Catalog size (number of streams).
    pub streams: usize,
    /// Zipf exponent of catalog popularity: `0` is uniform, `≈ 1` matches
    /// measured video-on-demand popularity.
    pub theta: f64,
    /// Interests per user (the sparse degree). Duplicated samples are
    /// deduplicated, so a user may end up with slightly fewer.
    pub interests_per_user: usize,
    /// Server budget as a fraction of total catalog cost (floored so the
    /// costliest stream always fits).
    pub budget_fraction: f64,
    /// Utility cap slack: `W_u = cap_slack ×` the user's total interest
    /// utility; `≤ 0` means unbounded caps.
    pub cap_slack: f64,
    /// Instance lane layout (see the module docs).
    pub lane_mode: LaneMode,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            users: 100_000,
            streams: 2_000,
            theta: 1.0,
            interests_per_user: 8,
            budget_fraction: 0.3,
            cap_slack: 0.8,
            lane_mode: LaneMode::Exact,
        }
    }
}

impl WebConfig {
    /// A size-scaled preset: catalog and degree chosen for `users` so the
    /// instance stays sparse (`streams = max(64, users / 64)`, 8 interests
    /// per user), with the default contention knobs.
    #[must_use]
    pub fn scaled(users: usize) -> Self {
        WebConfig {
            users,
            streams: (users / 64).max(64),
            ..WebConfig::default()
        }
    }

    /// The same workload with a different lane layout.
    #[must_use]
    pub fn with_lane_mode(mut self, mode: LaneMode) -> Self {
        self.lane_mode = mode;
        self
    }

    /// Generates an instance deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `users`, `streams` or `interests_per_user` is zero, or
    /// `budget_fraction` is not positive.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(
            self.users > 0 && self.streams > 0 && self.interests_per_user > 0,
            "web workloads need at least one user, stream and interest"
        );
        assert!(
            self.budget_fraction > 0.0,
            "budget_fraction must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let popularity = Zipf::new(self.streams, self.theta);

        let costs: Vec<f64> = (0..self.streams)
            .map(|_| 1.0 + 3.0 * rng.gen::<f64>())
            .collect();
        let total_cost: f64 = costs.iter().sum();
        let max_cost = costs.iter().copied().fold(0.0f64, f64::max);
        let budget = (total_cost * self.budget_fraction).max(max_cost);

        let mut b = Instance::builder(format!("web#{seed}"))
            .server_budgets(vec![budget])
            .lane_mode(self.lane_mode);
        for &c in &costs {
            b.add_stream(vec![c]);
        }

        // One pass per user: sample the sparse interest set from the
        // popularity distribution, dedup, then add the user (cap depends on
        // its total) and its interests. No per-user state survives the
        // loop, so generation is O(users × degree × log streams) time and
        // O(degree) scratch.
        let mut picked: Vec<(usize, f64)> = Vec::with_capacity(self.interests_per_user);
        for _ in 0..self.users {
            picked.clear();
            for _ in 0..self.interests_per_user {
                let s = popularity.sample(&mut rng);
                let w = 0.5 + 4.0 * rng.gen::<f64>();
                picked.push((s, w));
            }
            picked.sort_unstable_by_key(|&(s, _)| s);
            picked.dedup_by_key(|&mut (s, _)| s);
            let total: f64 = picked.iter().map(|&(_, w)| w).sum();
            let cap = if self.cap_slack > 0.0 {
                self.cap_slack * total
            } else {
                f64::INFINITY
            };
            let u = b.add_user(cap, vec![]);
            for &(s, w) in &picked {
                b.add_interest(u, mmd_core::StreamId::new(s), w, vec![])
                    .expect("web interests are deduplicated");
            }
        }
        b.build().expect("web workloads are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebConfig {
        WebConfig {
            users: 600,
            streams: 50,
            ..WebConfig::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small();
        assert_eq!(cfg.generate(3), cfg.generate(3));
        assert_ne!(cfg.generate(3), cfg.generate(4));
    }

    #[test]
    fn sparse_and_single_measure() {
        let inst = small().generate(1);
        assert_eq!(inst.num_users(), 600);
        assert_eq!(inst.num_streams(), 50);
        assert!(inst.is_single_budget());
        assert_eq!(inst.max_user_measures(), 0);
        for u in inst.users() {
            let d = inst.user(u).interests().len();
            assert!((1..=8).contains(&d), "degree {d} out of range");
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let inst = small().generate(7);
        // The head of the catalog must draw a far larger audience than the
        // tail (ranks are stream ids by construction).
        let head: usize = (0..5)
            .map(|s| inst.audience(mmd_core::StreamId::new(s)).len())
            .sum();
        let tail: usize = (45..50)
            .map(|s| inst.audience(mmd_core::StreamId::new(s)).len())
            .sum();
        assert!(head > 4 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn budget_is_contended() {
        let inst = small().generate(2);
        let demand: f64 = inst.streams().map(|s| inst.cost(s, 0)).sum();
        assert!(demand > inst.budget(0));
    }

    #[test]
    fn compact_mode_generates_compact_lanes() {
        let cfg = small().with_lane_mode(LaneMode::Compact);
        let inst = cfg.generate(5);
        assert_eq!(inst.lane_mode(), LaneMode::Compact);
        let err = inst.quantization_error();
        assert!(err > 0.0 && err.is_finite());
        // The exact twin is the same workload in the default layout, with
        // the fatter per-interest weight lane.
        let exact = small().generate(5);
        assert_eq!(exact.lane_mode(), LaneMode::Exact);
        assert!(inst.lane_bytes() < exact.lane_bytes());
    }
}
