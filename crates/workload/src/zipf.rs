//! A Zipf(θ) sampler over ranks `0..n` — the standard model for video
//! popularity (a few channels draw most viewers).
//!
//! Rank `r` (0-based) has weight `1/(r+1)^θ`; `θ = 0` is uniform, `θ ≈ 1`
//! matches measured TV channel popularity.

use mmd_core::num::comp_add;
use rand::Rng;

/// Precomputed Zipf distribution supporting O(log n) sampling and O(1)
/// weight queries.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative weights, `cumulative[r] = Σ_{i ≤ r} w_i`.
    cumulative: Vec<f64>,
    weights: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf(θ) distribution over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "invalid theta {theta}");
        let mut cumulative = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        // Neumaier-compensated running sum: with a naive `total += w` the
        // low-rank tail weights (~1e-6 of the head at n ≈ 1e6, θ ≈ 1) are
        // rounded away against the large running total, so the cumulative
        // table under-represents the tail and sampling skews toward the
        // head. The compensation keeps the prefix sums exact to ULPs.
        let mut total = 0.0;
        let mut comp = 0.0;
        for r in 0..n {
            let w = 1.0 / ((r + 1) as f64).powf(theta);
            comp_add(&mut total, &mut comp, w);
            weights.push(w);
            cumulative.push(total + comp);
        }
        Zipf {
            cumulative,
            weights,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if there are no ranks (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The (unnormalized) weight of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn weight(&self, r: usize) -> f64 {
        self.weights[r]
    }

    /// The probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        self.weights[r] / self.total()
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen_range(0.0..self.total());
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_decay() {
        let z = Zipf::new(10, 1.0);
        for r in 1..10 {
            assert!(z.weight(r) < z.weight(r - 1));
        }
        assert!((z.weight(0) - 1.0).abs() < 1e-12);
        assert!((z.weight(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(5, 0.0);
        for r in 0..5 {
            assert!((z.probability(r) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = Zipf::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            let expected = z.probability(r);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(16, 0.8);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty() {
        Zipf::new(0, 1.0);
    }

    /// Mass conservation at catalog scale: the final cumulative entry must
    /// equal the exactly-summed weight mass to ULPs. A naive running
    /// `total +=` loses the low-rank tail against the large head at
    /// n ≈ 1e6 (the regression this pins); pairwise summation is the
    /// independent exact-to-ULPs yardstick.
    #[test]
    fn large_n_mass_is_conserved() {
        fn pairwise(w: &[f64]) -> f64 {
            if w.len() <= 8 {
                w.iter().sum()
            } else {
                let mid = w.len() / 2;
                pairwise(&w[..mid]) + pairwise(&w[mid..])
            }
        }
        for theta in [0.8, 1.0, 1.2] {
            let n = 1_000_000;
            let z = Zipf::new(n, theta);
            let weights: Vec<f64> = (0..n).map(|r| z.weight(r)).collect();
            let exact = pairwise(&weights);
            let err = (z.total() - exact).abs();
            // 1e6 naive adds drift by ~1e-13 relative or worse; the
            // compensated sum stays within a few ULPs of the pairwise
            // reference (which itself carries ~log n ULPs of slack).
            assert!(
                err <= 16.0 * f64::EPSILON * exact,
                "theta {theta}: total {} vs exact {exact} (err {err:e})",
                z.total()
            );
            // Every prefix stays monotone so binary-search sampling is
            // well-defined across the whole table.
            assert!(
                z.cumulative.windows(2).all(|w| w[0] <= w[1]),
                "theta {theta}: cumulative table must be nondecreasing"
            );
        }
    }
}
