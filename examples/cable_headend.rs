//! A realistic cable head-end scenario (the paper's Fig. 1): a synthetic
//! catalog of SD/HD/UHD channels under three server budgets (egress
//! bandwidth, processing, input ports), served to a Zipf-preference
//! population of households and gateways.
//!
//! Compares the paper's pipeline against the deployed-practice threshold
//! policy and an upper bound on the optimum.
//!
//! Run with: `cargo run --release --example cable_headend`

use mmd::core::algo::{self, baselines};
use mmd::exact::bounds::fractional_upper_bound;
use mmd::workload::WorkloadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = WorkloadConfig::default();
    cfg.catalog.streams = 120;
    cfg.catalog.measures = 3;
    cfg.population.users = 80;
    cfg.population.user_measures = 1;
    cfg.budget_fraction = 0.25;

    println!("| seed | pipeline | threshold θ=0.9 | utility-order | upper bound |");
    println!("|---|---|---|---|---|");
    for seed in 0..5u64 {
        let inst = cfg.generate(seed);
        let pipeline = algo::solve_mmd(&inst, &algo::MmdConfig::default())?;
        let threshold = baselines::threshold_admission(&inst, &baselines::id_order(&inst), 0.9);
        let util_order = baselines::utility_order_admission(&inst);
        let ub = fractional_upper_bound(&inst);
        println!(
            "| {seed} | {:.1} | {:.1} | {:.1} | {:.1} |",
            pipeline.utility,
            threshold.utility(&inst),
            util_order.utility(&inst),
            ub
        );
        pipeline
            .assignment
            .check_feasible(&inst)
            .expect("pipeline output is feasible");
    }
    println!("\n(utilities; higher is better — the pipeline should dominate both baselines)");
    Ok(())
}
