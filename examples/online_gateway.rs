//! The §5 scenario: a video gateway allocating *small* streams online as
//! they arrive, with no knowledge of the future, via Algorithm 2's
//! exponential cost functions.
//!
//! Run with: `cargo run --release --example online_gateway`

use mmd::core::algo::online::{OnlineAllocator, OnlineConfig};
use mmd::exact::bounds::fractional_upper_bound;
use mmd::workload::{special, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small-streams instance satisfying the Theorem 1.2 hypothesis.
    let inst = special::small_streams(80, 8, 2, 7);
    let trace = TraceConfig::default().generate(inst.num_streams(), 7);

    let mut alloc = OnlineAllocator::with_config(&inst, OnlineConfig::default())?;
    let small = alloc.smallness();
    println!(
        "gamma = {:.2}, mu = {:.2}, log2(mu) = {:.2}, smallness ok: {}",
        small.gamma, small.mu, small.log_mu, small.ok
    );
    println!(
        "competitive bound 1 + 2·log2(mu) = {:.2}",
        1.0 + 2.0 * small.log_mu
    );

    let mut accepted = 0;
    for s in trace.arrival_order() {
        let outcome = alloc.offer(s);
        if !outcome.assigned.is_empty() {
            accepted += 1;
            if accepted <= 5 {
                println!(
                    "  t+{accepted}: accepted {s} for {} users (gain {:.2})",
                    outcome.assigned.len(),
                    outcome.gained
                );
            }
        }
    }
    let utility = alloc.utility();
    let ub = fractional_upper_bound(&inst);
    println!("accepted {accepted}/{} streams", inst.num_streams());
    println!("online utility: {utility:.2}");
    println!("offline upper bound: {ub:.2}");
    println!(
        "empirical ratio ≤ {:.2} (theorem allows {:.2})",
        ub / utility.max(1e-9),
        1.0 + 2.0 * small.log_mu
    );
    alloc
        .assignment()
        .check_feasible(&inst)
        .expect("Lemma 5.1: no budget is violated under smallness");
    println!("feasible: yes (Lemma 5.1)");
    Ok(())
}
