//! Head-end simulation: stream arrivals and departures over time, three
//! admission policies on identical traces — the §5 online algorithm, the
//! deployed-practice threshold baseline, and the offline Theorem 1.1 oracle.
//!
//! Run with: `cargo run --release --example policy_comparison`

use mmd::sim::{run, PolicyKind, SimConfig};
use mmd::workload::{TraceConfig, WorkloadConfig};

fn main() {
    let mut wcfg = WorkloadConfig::default();
    wcfg.catalog.streams = 80;
    wcfg.population.users = 40;
    wcfg.budget_fraction = 0.3;

    let tcfg = TraceConfig {
        arrival_rate: 2.0,
        mean_duration: 25.0,
        heavy_tail: true,
    };

    println!("| seed | policy | avg utility | peak util | admitted | rejected |");
    println!("|---|---|---|---|---|---|");
    for seed in 0..3u64 {
        let inst = wcfg.generate(seed);
        let trace = tcfg.generate(inst.num_streams(), seed);
        for policy in [
            PolicyKind::Online,
            PolicyKind::Threshold { margin: 0.9 },
            PolicyKind::OfflineOracle,
        ] {
            let rep = run(&inst, &trace, policy, &SimConfig::default());
            println!(
                "| {seed} | {} | {:.2} | {:.2} | {} | {} |",
                rep.policy,
                rep.avg_utility,
                rep.peak_utilization.iter().fold(0.0f64, |a, &b| a.max(b)),
                rep.admitted,
                rep.rejected
            );
        }
    }
    println!("\n(time-averaged delivered utility; identical traces per seed)");
}
