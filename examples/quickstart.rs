//! Quickstart: model a tiny head-end, run the full Theorem 1.1 pipeline,
//! and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use mmd::core::{algo, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A head-end with two cost measures: egress bandwidth (Mb/s) and
    // processing units.
    let mut b = Instance::builder("quickstart").server_budgets(vec![30.0, 10.0]);

    // Four streams: news (SD), sports (HD), movie (HD), documentary (SD).
    let news = b.add_stream(vec![2.5, 1.0]);
    let sports = b.add_stream(vec![8.0, 2.5]);
    let movie = b.add_stream(vec![8.0, 2.5]);
    let docu = b.add_stream(vec![2.5, 1.0]);

    // Three clients: two households (capped revenue, thin links) and one
    // neighborhood gateway (fat link, high cap).
    let alice = b.add_user(6.0, vec![12.0]);
    let bob = b.add_user(5.0, vec![20.0]);
    let gateway = b.add_user(25.0, vec![100.0]);

    b.add_interest(alice, news, 2.0, vec![2.5])?;
    b.add_interest(alice, sports, 5.0, vec![8.0])?;
    b.add_interest(bob, movie, 4.0, vec![8.0])?;
    b.add_interest(bob, docu, 1.5, vec![2.5])?;
    b.add_interest(gateway, news, 6.0, vec![2.5])?;
    b.add_interest(gateway, sports, 9.0, vec![8.0])?;
    b.add_interest(gateway, movie, 8.0, vec![8.0])?;
    b.add_interest(gateway, docu, 3.0, vec![2.5])?;

    let inst = b.build()?;
    println!("instance: {inst}");

    // Solve with the paper's end-to-end algorithm (reduction -> classify ->
    // fixed greedy).
    let out = algo::solve_mmd(&inst, &algo::MmdConfig::default())?;
    println!("total utility: {:.2}", out.utility);
    println!("streams transmitted:");
    for s in out.assignment.range() {
        let receivers: Vec<String> = inst
            .users()
            .filter(|&u| out.assignment.contains(u, s))
            .map(|u| u.to_string())
            .collect();
        println!(
            "  {s}: costs {:?} -> {}",
            inst.costs(s),
            receivers.join(", ")
        );
    }
    for i in 0..inst.num_measures() {
        println!(
            "measure {i}: used {:.1} of {:.1}",
            out.assignment.server_cost(i, &inst),
            inst.budget(i)
        );
    }
    out.assignment
        .check_feasible(&inst)
        .expect("pipeline output is always feasible");
    println!("feasible: yes");
    Ok(())
}
