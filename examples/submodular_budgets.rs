//! The §4 closing remark in action: maximizing an arbitrary submodular
//! function — here, weighted sensor coverage — under multiple budget
//! constraints, with the paper's reduction technique.
//!
//! Scenario: place relay sites (ground set) to cover neighborhoods
//! (weighted elements), subject to a money budget and a power budget.
//!
//! Run with: `cargo run --release --example submodular_budgets`

use mmd::core::algo::submodular::{
    is_budget_feasible, maximize_multi, SetFunction, WeightedCoverage,
};
use std::collections::BTreeSet;

fn main() {
    // 8 candidate relay sites; 10 neighborhoods weighted by population.
    let neighborhoods = vec![12.0, 8.0, 5.0, 20.0, 7.0, 3.0, 9.0, 14.0, 6.0, 11.0];
    let coverage = vec![
        vec![0, 1, 2], // site 0
        vec![2, 3],    // site 1
        vec![3, 4, 5], // site 2
        vec![5, 6],    // site 3
        vec![6, 7, 8], // site 4
        vec![8, 9],    // site 5
        vec![0, 9],    // site 6
        vec![1, 4, 7], // site 7
    ];
    let f = WeightedCoverage::new(coverage, neighborhoods);

    // Two budgets: money (units) and power (watts).
    let costs: Vec<Vec<f64>> = vec![
        vec![3.0, 2.0],
        vec![2.0, 1.0],
        vec![4.0, 2.5],
        vec![1.5, 1.0],
        vec![3.5, 2.0],
        vec![2.0, 1.5],
        vec![2.5, 1.0],
        vec![3.0, 3.0],
    ];
    let budgets = [8.0, 5.0];

    let sol = maximize_multi(&f, &costs, &budgets);
    println!("selected sites: {:?}", sol.items);
    println!("covered population: {:.0}", sol.value);
    println!(
        "total population: {:.0}",
        f.eval(&(0..f.ground_size()).collect::<BTreeSet<_>>())
    );
    for (i, b) in budgets.iter().enumerate() {
        let spent: f64 = sol.items.iter().map(|&x| costs[x][i]).sum();
        println!("budget {i}: spent {spent:.1} of {b:.1}");
    }
    assert!(is_budget_feasible(&sol.items, &costs, &budgets));
    println!("feasible: yes (O(m)-approximate, §4 closing remark)");
}
