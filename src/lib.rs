//! **mmd** — Video distribution under multiple constraints.
//!
//! A faithful, production-quality reproduction of Patt-Shamir & Rawitz,
//! *Video distribution under multiple constraints* (ICDCS 2008; TCS
//! 412:3717–3730, 2011): approximation algorithms for selecting which video
//! streams a multicast server transmits, and which clients receive them,
//! under multiple server budgets and per-client capacities.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`mmd_core`]) — the problem model and every algorithm from
//!   the paper (greedy, fixed greedy, partial enumeration,
//!   classify-and-select, the multi-budget reduction, the online `Allocate`,
//!   baselines, and generic budgeted submodular maximization), plus the
//!   scaling layers beyond it: batch solving and the sharded solver with
//!   its certified optimality gap (`algo::shard`, `graph`).
//! * [`exact`] ([`mmd_exact`]) — exact optima (branch-and-bound) and
//!   fractional upper bounds for measuring approximation ratios.
//! * [`workload`] ([`mmd_workload`]) — seeded synthetic workload generators:
//!   video catalogs, client populations, the paper's adversarial instances,
//!   and online arrival traces.
//! * [`sim`] ([`mmd_sim`]) — a deterministic discrete-event simulation of
//!   the Fig. 1 distribution system (multicast head-end + clients) driving
//!   pluggable admission policies.
//! * [`par`] ([`mmd_par`]) — the dependency-free scoped parallel runtime
//!   behind `solve_batch`, the parallel branch-and-bound, and every
//!   `--threads` flag; results are bit-identical at any thread count.
//!
//! # Quick start
//!
//! ```
//! use mmd::core::{algo, Instance};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Instance::builder("hello").server_budgets(vec![10.0, 4.0]);
//! let news = b.add_stream(vec![2.0, 1.0]);
//! let film = b.add_stream(vec![8.0, 3.0]);
//! let alice = b.add_user(6.0, vec![12.0]);
//! b.add_interest(alice, news, 2.0, vec![2.0])?;
//! b.add_interest(alice, film, 5.0, vec![8.0])?;
//! let inst = b.build()?;
//!
//! let outcome = algo::solve_mmd(&inst, &algo::MmdConfig::default())?;
//! assert!(outcome.assignment.check_feasible(&inst).is_ok());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! paper-vs-measured evaluation.

pub use mmd_core as core;
pub use mmd_exact as exact;
pub use mmd_par as par;
pub use mmd_sim as sim;
pub use mmd_workload as workload;

pub use mmd_core::{Assignment, Instance, InstanceBuilder, StreamId, UserId};
