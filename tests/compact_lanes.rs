//! The compact quantized lane layout's two acceptance contracts, checked
//! end to end through the facade:
//!
//! 1. **Off means off.** With [`LaneMode::Exact`] (the default) the lane
//!    layout is the bit-exact `f64` path: an instance built with the
//!    explicit mode, and a compact instance converted back, must solve
//!    bit-identically to the default build across the solver stack —
//!    including the two-level sharded pipeline.
//! 2. **On stays certified.** With [`LaneMode::Compact`] the solver's
//!    bracket must still contain the true optimum:
//!    `utility ≤ OPT ≤ upper_bound`, where OPT comes from the exact
//!    branch-and-bound solver run on the instance's exact twin (the same
//!    workload in the `f64` layout).

use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::core::LaneMode;
use mmd::exact::{solve, ExactConfig, Objective};
use mmd::workload::WebConfig;

/// A web workload small enough for exhaustive search (the exact solver is
/// exponential in the stream count) but with real Zipf contention.
fn tiny_web(lane_mode: LaneMode) -> WebConfig {
    WebConfig {
        users: 80,
        streams: 12,
        interests_per_user: 4,
        ..WebConfig::default()
    }
    .with_lane_mode(lane_mode)
}

/// The two-level configuration every test solves through: small shards,
/// two super-shards, parallel workers — the full tentpole path.
fn two_level() -> ShardConfig {
    ShardConfig {
        max_streams: 4,
        super_shards: 2,
        ..ShardConfig::default()
    }
    .with_threads(2)
}

#[test]
fn exact_mode_is_bit_identical_to_the_default_f64_path() {
    for seed in 0..6u64 {
        let default_build = tiny_web(LaneMode::Exact).generate(seed);
        assert_eq!(default_build.lane_mode(), LaneMode::Exact);
        assert_eq!(default_build.quantization_error(), 0.0);
        // A compact build of the same workload, converted back to exact
        // lanes: the conversion must round-trip to the same instance view.
        let converted = tiny_web(LaneMode::Compact)
            .generate(seed)
            .with_lane_mode(LaneMode::Exact)
            .expect("tiny instances rebuild their lanes");

        let cfg = two_level();
        let a = solve_sharded(&default_build, &cfg).unwrap();
        let b = solve_sharded(&converted, &cfg).unwrap();
        assert!(
            a.utility.to_bits() == b.utility.to_bits()
                && a.upper_bound.to_bits() == b.upper_bound.to_bits(),
            "seed {seed}: exact-mode solve differs from the default path: \
             ({}, {}) vs ({}, {})",
            a.utility,
            a.upper_bound,
            b.utility,
            b.upper_bound
        );
        assert_eq!(a.assignment, b.assignment, "seed {seed}");
    }
}

#[test]
fn compact_bracket_contains_the_exact_optimum() {
    let exact_cfg = ExactConfig {
        objective: Objective::Feasible,
        ..ExactConfig::default()
    };
    let mut nontrivial = 0usize;
    for seed in 0..6u64 {
        let compact = tiny_web(LaneMode::Compact).generate(seed);
        assert_eq!(compact.lane_mode(), LaneMode::Compact);
        let quant = compact.quantization_error();
        assert!(quant > 0.0 && quant.is_finite(), "seed {seed}: E = {quant}");

        let out = solve_sharded(&compact, &two_level()).unwrap();
        out.assignment
            .check_feasible(&compact)
            .expect("sharded solves end feasible");

        // True OPT on the exact twin: identical model, f64 lanes.
        let twin = compact
            .with_lane_mode(LaneMode::Exact)
            .expect("tiny instances rebuild their lanes");
        let opt = solve(&twin, &exact_cfg).unwrap().value;

        // The certified bracket must contain OPT; the quantized layout is
        // only allowed to widen the upper end (by the folded-in error).
        assert!(
            out.utility <= opt + 1e-9,
            "seed {seed}: compact utility {} exceeds OPT {opt}",
            out.utility
        );
        assert!(
            opt <= out.upper_bound + 1e-9,
            "seed {seed}: OPT {opt} escapes the certified upper bound {}",
            out.upper_bound
        );
        if opt > 0.0 {
            nontrivial += 1;
        }
    }
    assert!(
        nontrivial >= 4,
        "only {nontrivial}/6 seeds had a positive optimum — the family is \
         too easy to exercise the bracket"
    );
}
