//! Workspace wiring smoke test: the `mmd` facade must re-export the
//! member crates under stable paths, and the documented quick start must
//! keep working end to end. Catches facade/crate wiring regressions
//! (renamed re-exports, broken feature plumbing) before anything subtle.

use mmd::core::{algo, Instance};

/// The instance from the `src/lib.rs` quick-start doctest.
fn quickstart_instance() -> Instance {
    let mut b = Instance::builder("hello").server_budgets(vec![10.0, 4.0]);
    let news = b.add_stream(vec![2.0, 1.0]);
    let film = b.add_stream(vec![8.0, 3.0]);
    let alice = b.add_user(6.0, vec![12.0]);
    b.add_interest(alice, news, 2.0, vec![2.0]).unwrap();
    b.add_interest(alice, film, 5.0, vec![8.0]).unwrap();
    b.build().unwrap()
}

#[test]
fn facade_quickstart_solves_feasibly() {
    let inst = quickstart_instance();
    let outcome = algo::solve_mmd(&inst, &algo::MmdConfig::default()).unwrap();
    assert!(outcome.assignment.check_feasible(&inst).is_ok());
    assert!(outcome.utility > 0.0, "quick start should assign something");
}

#[test]
fn facade_reexports_line_up() {
    // `mmd::core` IS `mmd_core`: types must be interchangeable, not copies.
    let inst: mmd_core::Instance = quickstart_instance();
    let _: &mmd::core::Instance = &inst;

    // The flattened top-level re-exports match the `core` paths.
    let s: mmd::StreamId = mmd::core::StreamId::new(0);
    let u: mmd::UserId = mmd::core::UserId::new(0);
    let mut a: mmd::Assignment = mmd::core::Assignment::new(1);
    a.assign(u, s);
    assert_eq!(a.streams_of(u).count(), 1);
    let _: mmd::InstanceBuilder = mmd::Instance::builder("wired");
}

#[test]
fn facade_reaches_every_member_crate() {
    let inst = quickstart_instance();

    // workload: seeded generation is deterministic.
    let w = mmd::workload::WorkloadConfig::default();
    assert_eq!(w.generate(3), w.generate(3));

    // exact: the optimum bounds the approximation from above.
    let opt = mmd::exact::solve(&inst, &mmd::exact::ExactConfig::default())
        .unwrap()
        .value;
    let approx = algo::solve_mmd(&inst, &algo::MmdConfig::default())
        .unwrap()
        .utility;
    assert!(opt >= approx - 1e-9, "opt {opt} < approx {approx}");

    // sim: a simulated run over a seeded trace delivers a sane report.
    let sim_inst = w.generate(3);
    let trace = mmd::workload::TraceConfig::default().generate(sim_inst.num_streams(), 7);
    let report = mmd::sim::run(
        &sim_inst,
        &trace,
        mmd::sim::PolicyKind::Online,
        &mmd::sim::SimConfig::default(),
    );
    assert!(report.horizon > 0.0);
    assert_eq!(report.per_user_avg_utility.len(), sim_inst.num_users());
}
