//! Degrade-path suite for the solve-cost governance layer
//! (`mmd_core::govern`).
//!
//! Two contracts are pinned here. **Ungoverned equivalence:** with no
//! budget configured — and with limits too large to trip — the governed
//! engine's outcomes are bit-identical to the historical engine, apply by
//! apply. **Sound degradation:** when a budget trips, the committed
//! bracket still satisfies `utility ≤ OPT ≤ upper_bound` (cross-checked
//! against `mmd-exact` on tiny instances), the assignment stays feasible,
//! and a full refresh heals the engine back to exact scratch equality.
//!
//! All trips are forced deterministically with *work* budgets (`Some(0)`
//! trips before any solve) — wall budgets are machine-dependent.

use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::core::govern::{DegradeAction, SolveBudget};
use mmd::core::ingest::{IngestConfig, IngestEngine};
use mmd::exact::{solve as exact_solve, ExactConfig, Objective};
use mmd::workload::{ChurnConfig, ClusteredConfig};

fn config(cap: usize, super_shards: usize, budget: SolveBudget) -> IngestConfig {
    IngestConfig {
        shard: ShardConfig {
            max_streams: cap,
            super_shards,
            ..ShardConfig::default()
        },
        budget,
        ..IngestConfig::default()
    }
}

/// Replays `trace` in `batch`-sized chunks, returning every apply outcome.
fn replay(
    engine: &mut IngestEngine,
    trace: &[mmd::core::ingest::Update],
    batch: usize,
) -> Vec<mmd::core::IngestOutcome> {
    let mut outcomes = Vec::new();
    for chunk in trace.chunks(batch) {
        for update in chunk {
            engine.push(update.clone()).unwrap();
        }
        outcomes.push(engine.apply().unwrap());
    }
    outcomes
}

fn assert_matches_scratch(engine: &IngestEngine, context: &str) {
    let scratch = solve_sharded(engine.current_instance(), &engine.config().shard).unwrap();
    assert_eq!(
        engine.assignment(),
        &scratch.assignment,
        "{context}: assignments diverge"
    );
    assert_eq!(
        engine.utility().to_bits(),
        scratch.utility.to_bits(),
        "{context}: utility not bit-identical"
    );
    assert_eq!(
        engine.last_outcome().upper_bound.to_bits(),
        scratch.upper_bound.to_bits(),
        "{context}: upper bound diverges"
    );
}

/// Limits far beyond any real apply must leave the governed code path
/// bit-identical to the ungoverned engine — outcome by outcome, across
/// single- and two-level sharding.
#[test]
fn unconstrained_and_huge_budgets_are_bit_identical_to_ungoverned() {
    let huge = SolveBudget::default()
        .with_soft_work(u64::MAX / 4)
        .with_hard_work(u64::MAX / 2)
        .with_hard_action(DegradeAction::WidenGap);
    for (cap, supers) in [(0usize, 0usize), (5, 0), (5, 2)] {
        let inst = ClusteredConfig::decomposable(6, 5, 4).generate(3);
        let trace = ChurnConfig::mixed(90).generate(&inst, 17);

        let mut plain =
            IngestEngine::new(inst.clone(), config(cap, supers, SolveBudget::unlimited())).unwrap();
        let base = replay(&mut plain, &trace, 9);

        let mut governed = IngestEngine::new(inst, config(cap, supers, huge)).unwrap();
        let got = replay(&mut governed, &trace, 9);

        assert_eq!(base.len(), got.len());
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(
                a.utility.to_bits(),
                b.utility.to_bits(),
                "cap {cap} supers {supers} batch {i}: governed utility drifted"
            );
            assert_eq!(
                a.upper_bound.to_bits(),
                b.upper_bound.to_bits(),
                "cap {cap} supers {supers} batch {i}: governed bound drifted"
            );
            assert!(!b.degraded && !b.soft_tripped && !b.hard_tripped);
            assert_eq!(b.skipped_shards, 0);
            assert_eq!(b.stale_gap_fraction, 0.0);
        }
        assert_eq!(plain.assignment(), governed.assignment());
        let m = governed.metrics();
        assert_eq!(m.budget_soft_trips, 0);
        assert_eq!(m.budget_hard_trips, 0);
        assert_eq!(m.degraded_applies, 0);
        assert_eq!(m.deferred_full_resolves, 0);
        assert_matches_scratch(&governed, "huge budget final state");
    }
}

/// A hard trip under `WidenGap` skips every dirty-shard solve, yet the
/// committed bracket must still bound the true optimum of the *updated*
/// instance — verified against `mmd-exact` — and the merged assignment
/// must stay feasible.
#[test]
fn hard_trip_widen_gap_brackets_stay_certified_versus_exact() {
    let exact_cfg = ExactConfig {
        objective: Objective::Feasible,
        max_user_degree: 30,
        ..ExactConfig::default()
    };
    let zero = SolveBudget::default()
        .with_hard_work(0)
        .with_hard_action(DegradeAction::WidenGap);
    for seed in 0..3u64 {
        let inst = ClusteredConfig::contended(3, 4, 3).generate(seed);
        let trace = ChurnConfig::mixed(40).generate(&inst, seed + 5);
        let mut engine = IngestEngine::new(inst, config(3, 0, zero)).unwrap();
        let mut tripped = 0usize;
        for (b, chunk) in trace.chunks(8).enumerate() {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            let outcome = engine.apply().unwrap();
            let context = format!("seed {seed} batch {b}");
            assert!(
                outcome.utility <= outcome.upper_bound + 1e-9,
                "{context}: bracket inverted"
            );
            assert!(
                engine
                    .assignment()
                    .check_feasible(engine.current_instance())
                    .is_ok(),
                "{context}: degraded assignment infeasible"
            );
            if outcome.skipped_shards > 0 {
                tripped += 1;
                assert!(outcome.degraded && outcome.hard_tripped, "{context}");
                assert!(
                    outcome.stale_gap_fraction > 0.0 && outcome.stale_gap_fraction <= 1.0,
                    "{context}: stale gap {}",
                    outcome.stale_gap_fraction
                );
            }
            // The certificate must hold against the true optimum of the
            // committed (updated) instance even while degraded.
            let opt = exact_solve(engine.current_instance(), &exact_cfg)
                .unwrap()
                .value;
            assert!(
                outcome.utility <= opt + 1e-9 && opt <= outcome.upper_bound + 1e-9,
                "{context}: {} ≤ {opt} ≤ {} violated",
                outcome.utility,
                outcome.upper_bound
            );
        }
        assert!(tripped > 0, "seed {seed}: the zero budget never tripped");
        let m = engine.metrics();
        assert_eq!(m.budget_hard_trips as usize, tripped);
        assert_eq!(m.degraded_applies as usize, tripped);
        // Maintenance heals every stale shard: back to exact scratch
        // equality, and the healed bracket reports nothing stale.
        engine.refresh_full().unwrap();
        assert_matches_scratch(&engine, &format!("seed {seed} after refresh"));
        assert_eq!(engine.last_outcome().stale_gap_fraction, 0.0);
        assert!(!engine.last_outcome().degraded);
    }
}

/// `ShedToCache` (the default hard action) abandons the apply: committed
/// state untouched, pending retained, outcome marked fully stale.
#[test]
fn shed_to_cache_keeps_serving_the_last_committed_bracket() {
    let inst = ClusteredConfig::decomposable(4, 5, 3).generate(9);
    let trace = ChurnConfig::mixed(12).generate(&inst, 2);
    let zero = SolveBudget::default().with_hard_work(0); // default action: shed
    let mut engine = IngestEngine::new(inst, config(0, 0, zero)).unwrap();
    let before_utility = engine.utility();
    let before_assignment = engine.assignment().clone();
    let before_applies = engine.metrics().applies;

    for update in &trace {
        engine.push(update.clone()).unwrap();
    }
    let pending = engine.pending().len();
    assert!(pending > 0);
    let outcome = engine.apply().unwrap();

    // Not an error — but nothing committed either.
    assert!(outcome.stale && outcome.degraded && outcome.hard_tripped);
    assert_eq!(outcome.stale_gap_fraction, 1.0);
    assert_eq!(outcome.updates_applied, 0);
    assert_eq!(outcome.utility.to_bits(), before_utility.to_bits());
    assert_eq!(engine.assignment(), &before_assignment);
    assert_eq!(
        engine.pending().len(),
        pending,
        "shed must retain the batch for a retry"
    );
    let m = engine.metrics();
    assert_eq!(m.applies, before_applies, "a shed apply is not an apply");
    assert_eq!(m.budget_hard_trips, 1);
    assert_eq!(m.degraded_applies, 1);
    // The committed state remains exactly the pre-batch scratch solve.
    assert_matches_scratch(&engine, "after shed");
}

/// `DeferFull` commits the widened bracket and asks for background
/// maintenance via `refresh_wanted`; a successful refresh clears the
/// request and restores scratch equality.
#[test]
fn defer_full_requests_background_refresh_and_recovers() {
    let inst = ClusteredConfig::decomposable(4, 5, 3).generate(21);
    let trace = ChurnConfig::mixed(16).generate(&inst, 4);
    let zero = SolveBudget::default()
        .with_hard_work(0)
        .with_hard_action(DegradeAction::DeferFull);
    let mut engine = IngestEngine::new(inst, config(0, 0, zero)).unwrap();
    assert!(!engine.refresh_wanted());

    for update in &trace {
        engine.push(update.clone()).unwrap();
    }
    let outcome = engine.apply().unwrap();
    assert!(outcome.degraded && outcome.hard_tripped && outcome.deferred_full);
    assert!(
        engine.refresh_wanted(),
        "a deferred full re-solve must surface to the frontend"
    );
    assert!(engine.pending().is_empty(), "defer commits the batch");
    assert!(engine.metrics().deferred_full_resolves >= 1);
    assert!(outcome.utility <= outcome.upper_bound + 1e-9);

    engine.refresh_full().unwrap();
    assert!(!engine.refresh_wanted(), "a refresh consumes the request");
    assert_matches_scratch(&engine, "after deferred refresh");
}

/// A soft-only trip always degrades to `WidenGap`: the apply commits, the
/// gap widens soundly, and the soft counter advances while the hard one
/// stays untouched. Two-level engines take the same ladder.
#[test]
fn soft_trips_widen_and_commit_at_both_shard_levels() {
    let soft = SolveBudget::default().with_soft_work(0);
    for (cap, supers) in [(4usize, 0usize), (4, 2)] {
        let inst = ClusteredConfig::decomposable(6, 5, 4).generate(13);
        let trace = ChurnConfig::mixed(30).generate(&inst, 8);
        let mut engine = IngestEngine::new(inst, config(cap, supers, soft)).unwrap();
        let mut soft_trips = 0usize;
        for chunk in trace.chunks(10) {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            let outcome = engine.apply().unwrap();
            assert!(!outcome.hard_tripped, "no hard limit is configured");
            assert!(outcome.utility <= outcome.upper_bound + 1e-9);
            assert!(
                engine
                    .assignment()
                    .check_feasible(engine.current_instance())
                    .is_ok(),
                "supers {supers}: degraded assignment infeasible"
            );
            if outcome.soft_tripped {
                soft_trips += 1;
                assert!(outcome.degraded);
            }
        }
        assert!(soft_trips > 0, "supers {supers}: soft budget never tripped");
        let m = engine.metrics();
        assert_eq!(m.budget_soft_trips as usize, soft_trips);
        assert_eq!(m.budget_hard_trips, 0);
        engine.refresh_full().unwrap();
        assert_matches_scratch(&engine, &format!("supers {supers} healed"));
    }
}
