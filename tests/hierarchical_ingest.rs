//! Differential suite for the hierarchical (two-level) incremental ingest
//! path: `IngestEngine` with `super_shards > 1` is pinned, batch by batch,
//! against from-scratch `solve_sharded` of the same committed instance at
//! the same configuration — the single-level equivalence contract of
//! `tests/ingest_churn.rs`, extended to the coarse partition.
//!
//! On top of bit-identity the suite pins what the refactor bought: on
//! low-churn traces the two-level engine must stop escalating to
//! `full_resolve`, reuse whole super-shards, and hit the (super, inner)
//! cache inside dirty super-shards. The `#[ignore]`d web-100k soak is the
//! CI `web-churn` job's long-haul run: a 10k-update drift trace through
//! the asynchronous backend at `super_shards = 4`, diffed against scratch
//! every few batches and at the end (run with `--include-ignored`).

use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::core::ingest::{IngestConfig, IngestEngine, IngestOutcome};
use mmd::core::{AsyncIngest, LaneMode};
use mmd::workload::{ChurnConfig, ClusteredConfig, WebConfig};

const THREADS: [usize; 3] = [1, 2, 8];

fn config(cap: usize, super_shards: usize, threads: usize) -> IngestConfig {
    IngestConfig {
        shard: ShardConfig {
            max_streams: cap,
            super_shards,
            ..ShardConfig::default()
        }
        .with_threads(threads),
        ..IngestConfig::default()
    }
}

/// Asserts the engine's committed state equals a from-scratch sharded
/// solve of its committed instance, bit for bit.
fn assert_matches_scratch(engine: &IngestEngine, context: &str) {
    let scratch = solve_sharded(engine.current_instance(), &engine.config().shard).unwrap();
    assert_eq!(
        engine.assignment(),
        &scratch.assignment,
        "{context}: assignments diverge"
    );
    assert_eq!(
        engine.utility().to_bits(),
        scratch.utility.to_bits(),
        "{context}: utility not bit-identical ({} vs {})",
        engine.utility(),
        scratch.utility
    );
    assert_eq!(
        engine.last_outcome().upper_bound.to_bits(),
        scratch.upper_bound.to_bits(),
        "{context}: certificate upper bound diverges"
    );
    assert!(
        engine
            .assignment()
            .check_feasible(engine.current_instance())
            .is_ok(),
        "{context}: committed assignment infeasible"
    );
}

/// Replays `trace` in `batch`-sized applies, anchoring every batch against
/// scratch, and returns the outcomes.
fn replay_and_anchor(
    inst: &mmd::core::Instance,
    trace: &[mmd::core::Update],
    batch: usize,
    cfg: IngestConfig,
    context: &str,
) -> (Vec<IngestOutcome>, IngestEngine) {
    let mut engine = IngestEngine::new(inst.clone(), cfg).unwrap();
    assert_matches_scratch(&engine, &format!("{context} initial"));
    let mut outcomes = Vec::new();
    for (b, chunk) in trace.chunks(batch).enumerate() {
        engine.push_batch(chunk.iter().cloned()).unwrap();
        outcomes.push(engine.apply().unwrap());
        assert_matches_scratch(&engine, &format!("{context} batch {b}"));
    }
    (outcomes, engine)
}

#[test]
fn two_level_incremental_matches_scratch_on_churn_presets() {
    for seed in 0..2u64 {
        for super_shards in [2usize, 3] {
            // Decomposable + drift-only churn: the incremental best case.
            let inst = ClusteredConfig::decomposable(6, 5, 4).generate(seed);
            let trace = ChurnConfig::low(36).generate(&inst, seed);
            replay_and_anchor(
                &inst,
                &trace,
                6,
                config(0, super_shards, 1),
                &format!("low seed {seed} supers {super_shards}"),
            );

            // Contended + capped + mixed churn: cut interests, water-filled
            // shares, repair and escalation all cross the super layer.
            let inst = ClusteredConfig::contended(4, 8, 6).generate(seed);
            let trace = ChurnConfig {
                budget_fraction: 0.08,
                ..ChurnConfig::mixed(48)
            }
            .generate(&inst, seed + 50);
            replay_and_anchor(
                &inst,
                &trace,
                8,
                config(8, super_shards, 1),
                &format!("mixed seed {seed} supers {super_shards}"),
            );
        }
    }
}

#[test]
fn two_level_outcomes_are_bit_identical_across_thread_counts() {
    let inst = ClusteredConfig::decomposable(8, 5, 4).generate(11);
    let trace = ChurnConfig::mixed(72).generate(&inst, 7);

    let replay = |threads: usize| {
        let mut engine = IngestEngine::new(inst.clone(), config(0, 3, threads)).unwrap();
        let mut outcomes = Vec::new();
        for chunk in trace.chunks(6) {
            engine.push_batch(chunk.iter().cloned()).unwrap();
            outcomes.push(engine.apply().unwrap());
        }
        (engine, outcomes)
    };

    let (base_engine, base_outcomes) = replay(THREADS[0]);
    for &threads in &THREADS[1..] {
        let (engine, outcomes) = replay(threads);
        assert_eq!(
            engine.assignment(),
            base_engine.assignment(),
            "threads {threads}"
        );
        assert_eq!(
            engine.utility().to_bits(),
            base_engine.utility().to_bits(),
            "threads {threads}"
        );
        for (b, (a, o)) in base_outcomes.iter().zip(&outcomes).enumerate() {
            assert_eq!(
                a.utility.to_bits(),
                o.utility.to_bits(),
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.super_shards, o.super_shards,
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.dirty_supers, o.dirty_supers,
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.resolved_supers, o.resolved_supers,
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.resolved_shards, o.resolved_shards,
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.full_resolve, o.full_resolve,
                "threads {threads} batch {b}"
            );
        }
    }
    assert_matches_scratch(&base_engine, "two-level thread-invariance final");
}

/// The acceptance criterion in miniature: `super_shards > 1` low-churn
/// batches stay incremental — no blanket `full_resolve`, whole
/// super-shards reused, and inner solves inside dirty super-shards served
/// from the (super, inner) cache.
#[test]
fn low_churn_batches_stay_incremental_at_both_levels() {
    // Inner cap 3 splits each 6-stream cluster (its own super-shard: the
    // partition never merges disjoint components) into two inner shards,
    // so a drift update dirties one super-shard but usually touches only
    // one of its halves — the untouched half must come from the cache.
    let inst = ClusteredConfig::decomposable(9, 6, 4).generate(5);
    let trace = ChurnConfig::low(48).generate(&inst, 9);
    let mut engine = IngestEngine::new(inst, config(3, 3, 2)).unwrap();
    let mut batches = 0usize;
    let mut full = 0usize;
    for chunk in trace.chunks(6) {
        engine.push_batch(chunk.iter().cloned()).unwrap();
        let outcome = engine.apply().unwrap();
        batches += 1;
        full += usize::from(outcome.full_resolve);
        assert!(outcome.super_shards > 1, "two-level mode must be active");
    }
    assert!(
        full < batches,
        "low churn must not escalate every batch ({full}/{batches} full re-solves)"
    );
    let m = *engine.metrics();
    assert!(
        m.resolved_supers < m.super_slots,
        "some super-shards must be reused wholesale ({}/{} slots re-solved)",
        m.resolved_supers,
        m.super_slots
    );
    assert!(
        m.inner_cache_hits > 0,
        "dirty super-shards must reuse untouched inner solves"
    );
    assert!(m.dirty_super_fraction() < 1.0);
    assert_matches_scratch(&engine, "low-churn final");
}

/// Asserts two per-batch outcome sequences agree bit-for-bit on the
/// certified bracket and on the two-level work counters.
fn assert_outcomes_match(sync: &[IngestOutcome], async_: &[IngestOutcome], context: &str) {
    assert_eq!(sync.len(), async_.len(), "{context}: batch counts diverge");
    for (b, (s, a)) in sync.iter().zip(async_).enumerate() {
        assert_eq!(
            s.utility.to_bits(),
            a.utility.to_bits(),
            "{context} batch {b}: utility diverges"
        );
        assert_eq!(
            s.upper_bound.to_bits(),
            a.upper_bound.to_bits(),
            "{context} batch {b}: upper bound diverges"
        );
        assert_eq!(s.updates_applied, a.updates_applied, "{context} batch {b}");
        assert_eq!(s.super_shards, a.super_shards, "{context} batch {b}");
        assert_eq!(s.dirty_supers, a.dirty_supers, "{context} batch {b}");
        assert_eq!(s.resolved_supers, a.resolved_supers, "{context} batch {b}");
        assert_eq!(s.resolved_shards, a.resolved_shards, "{context} batch {b}");
        assert_eq!(s.full_resolve, a.full_resolve, "{context} batch {b}");
    }
}

/// The CI `web-churn` soak: web-100k in compact lanes, a 10k-update
/// drift-only trace at `super_shards = 4`, replayed through the
/// synchronous path (anchored against a from-scratch sharded solve every
/// 8 batches and at the end) and through the asynchronous backend (every
/// epoch's outcome diffed bit-for-bit against the synchronous run, final
/// state anchored against scratch). Ignored by default; run in release
/// with `--include-ignored`.
#[test]
#[ignore = "soak: run explicitly (CI web-churn step)"]
fn soak_web100k_two_level_async_churn() {
    // Amply provisioned budget: water-fill shares demand-cap, so they
    // are stable under pure utility drift and the (super, inner) cache
    // can actually serve untouched inner shards. Escalation gates are
    // opened — with 4 coarse super-shards any 256-update batch dirties
    // all of them, and the coarse cut fraction of the connected Zipf
    // graph (~0.35) is static, so both default triggers would force a
    // full re-solve on every batch regardless of churn. Escalation is a
    // pure work heuristic (the anchors below hold either way).
    let inst = WebConfig {
        budget_fraction: 1.5,
        ..WebConfig::scaled(100_000)
    }
    .with_lane_mode(LaneMode::Compact)
    .generate(9_000);
    let trace = ChurnConfig::low(10_000).generate(&inst, 2026);
    let batch = 256usize;
    let cfg = IngestConfig {
        max_dirty_fraction: 1.0,
        max_cut_fraction: 1.0,
        ..config(64, 4, 8)
    };

    let mut engine = IngestEngine::new(inst.clone(), cfg).unwrap();
    let mut sync_outcomes = Vec::new();
    let mut full = 0usize;
    for (b, chunk) in trace.chunks(batch).enumerate() {
        engine.push_batch(chunk.iter().cloned()).unwrap();
        let outcome = engine.apply().unwrap();
        full += usize::from(outcome.full_resolve);
        sync_outcomes.push(outcome);
        if b % 8 == 0 {
            assert_matches_scratch(&engine, &format!("web soak batch {b}"));
        }
    }
    assert_matches_scratch(&engine, "web soak final");
    assert!(
        full < sync_outcomes.len(),
        "web-scale drift churn must stay incremental ({full}/{} full re-solves)",
        sync_outcomes.len()
    );
    let m = *engine.metrics();
    assert!(
        m.inner_cache_hits > 0,
        "web drift churn must serve untouched inner shards from the cache"
    );
    assert!(
        sync_outcomes
            .iter()
            .any(|o| o.resolved_shards < o.num_shards),
        "some batch must re-solve fewer inner shards than a full pass"
    );

    // The asynchronous twin: the same trace through `apply_async`,
    // submitted in waves so the solver thread works behind a real queue.
    let async_ingest = AsyncIngest::new(IngestEngine::new(inst, cfg).unwrap());
    let waiter = async_ingest.waiter();
    let mut async_outcomes = Vec::new();
    let chunks: Vec<&[mmd::core::Update]> = trace.chunks(batch).collect();
    for wave in chunks.chunks(8) {
        let epochs: Vec<u64> = wave
            .iter()
            .map(|chunk| async_ingest.apply_async(chunk.to_vec()).unwrap())
            .collect();
        for epoch in epochs {
            async_outcomes.push(waiter.wait(epoch).unwrap());
        }
    }
    let async_engine = async_ingest.shutdown();
    assert_outcomes_match(&sync_outcomes, &async_outcomes, "web soak");
    assert_eq!(
        engine.utility().to_bits(),
        async_engine.utility().to_bits(),
        "web soak: final utility diverges"
    );
    assert_eq!(
        engine.assignment(),
        async_engine.assignment(),
        "web soak: final assignment diverges"
    );
    assert_matches_scratch(&async_engine, "web soak async final");
}
