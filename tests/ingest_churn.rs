//! Differential churn suite: the incremental ingest engine is pinned
//! against from-scratch sharded solves of every updated state.
//!
//! The engine's contract (see `mmd_core::ingest`) is that after any
//! applied batch its committed state is **bit-identical** to
//! `solve_sharded` run from scratch on the updated instance at the same
//! configuration — regardless of churn mix, shard caps, budget contention
//! or thread count. The tests here replay fixed-seed churn traces and
//! check exactly that, batch by batch; the `soak_10k_update_trace` case is
//! the CI `ingest-soak` step's 10k-update long-haul run (ignored by
//! default; run with `--include-ignored`).

use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::core::ingest::{IngestConfig, IngestEngine, IngestOutcome};
use mmd::core::AsyncIngest;
use mmd::workload::{ChurnConfig, ClusteredConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config(cap: usize, threads: usize) -> IngestConfig {
    IngestConfig {
        shard: ShardConfig {
            max_streams: cap,
            ..ShardConfig::default()
        }
        .with_threads(threads),
        ..IngestConfig::default()
    }
}

/// Asserts the engine's committed state equals a from-scratch sharded
/// solve of its committed instance, bit for bit.
fn assert_matches_scratch(engine: &IngestEngine, context: &str) {
    let scratch = solve_sharded(engine.current_instance(), &engine.config().shard).unwrap();
    assert_eq!(
        engine.assignment(),
        &scratch.assignment,
        "{context}: assignments diverge"
    );
    assert_eq!(
        engine.utility().to_bits(),
        scratch.utility.to_bits(),
        "{context}: utility not bit-identical ({} vs {})",
        engine.utility(),
        scratch.utility
    );
    assert_eq!(
        engine.last_outcome().upper_bound.to_bits(),
        scratch.upper_bound.to_bits(),
        "{context}: certificate upper bound diverges"
    );
    assert!(
        engine
            .assignment()
            .check_feasible(engine.current_instance())
            .is_ok(),
        "{context}: committed assignment infeasible"
    );
}

#[test]
fn incremental_matches_scratch_on_decomposable_instances() {
    for seed in 0..3u64 {
        let inst = ClusteredConfig::decomposable(6, 5, 4).generate(seed);
        let trace = ChurnConfig::mixed(120).generate(&inst, seed);
        let mut engine = IngestEngine::new(inst, config(0, 1)).unwrap();
        assert_matches_scratch(&engine, &format!("seed {seed} initial"));
        for (b, chunk) in trace.chunks(10).enumerate() {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            engine.apply().unwrap();
            assert_matches_scratch(&engine, &format!("seed {seed} batch {b}"));
        }
    }
}

#[test]
fn incremental_matches_scratch_on_contended_capped_instances() {
    // Connected, contended instances under a shard cap: cut interests,
    // water-filled budget shares, repair and trigger escalations are all
    // exercised — equivalence must still be exact.
    for seed in 0..3u64 {
        let inst = ClusteredConfig::contended(4, 8, 6).generate(seed);
        let trace = ChurnConfig {
            budget_fraction: 0.08,
            ..ChurnConfig::mixed(80)
        }
        .generate(&inst, seed + 50);
        let mut engine = IngestEngine::new(inst, config(8, 1)).unwrap();
        for (b, chunk) in trace.chunks(8).enumerate() {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            let outcome = engine.apply().unwrap();
            assert!(outcome.gap_fraction <= 1.0);
            assert_matches_scratch(&engine, &format!("seed {seed} batch {b}"));
        }
    }
}

#[test]
fn ingest_is_bit_identical_across_thread_counts() {
    let inst = ClusteredConfig::decomposable(8, 5, 4).generate(11);
    let trace = ChurnConfig::mixed(90).generate(&inst, 7);

    let replay = |threads: usize| {
        let mut engine = IngestEngine::new(inst.clone(), config(0, threads)).unwrap();
        let mut outcomes = Vec::new();
        for chunk in trace.chunks(6) {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            outcomes.push(engine.apply().unwrap());
        }
        (engine, outcomes)
    };

    let (base_engine, base_outcomes) = replay(1);
    for threads in THREADS {
        let (engine, outcomes) = replay(threads);
        assert_eq!(
            engine.assignment(),
            base_engine.assignment(),
            "threads {threads}"
        );
        assert_eq!(
            engine.utility().to_bits(),
            base_engine.utility().to_bits(),
            "threads {threads}"
        );
        for (b, (a, o)) in base_outcomes.iter().zip(&outcomes).enumerate() {
            assert_eq!(
                a.utility.to_bits(),
                o.utility.to_bits(),
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.dirty_shards, o.dirty_shards,
                "threads {threads} batch {b}"
            );
            assert_eq!(
                a.resolved_shards, o.resolved_shards,
                "threads {threads} batch {b}"
            );
        }
    }
    assert_matches_scratch(&base_engine, "thread-invariance final state");
}

/// Replays `trace` through the synchronous `push`/`apply` path, returning
/// every batch outcome and the final engine.
fn replay_sync(
    inst: &mmd::core::Instance,
    trace: &[mmd::core::Update],
    batch: usize,
    cfg: IngestConfig,
) -> (Vec<IngestOutcome>, IngestEngine) {
    let mut engine = IngestEngine::new(inst.clone(), cfg).unwrap();
    let mut outcomes = Vec::new();
    for chunk in trace.chunks(batch) {
        engine.push_batch(chunk.iter().cloned()).unwrap();
        outcomes.push(engine.apply().unwrap());
    }
    (outcomes, engine)
}

/// Replays `trace` through `AsyncIngest::apply_async`, submitting `wave`
/// epochs ahead of the collector (so the solver thread genuinely runs
/// behind a queue), returning every epoch's outcome and the drained
/// engine.
fn replay_async(
    inst: &mmd::core::Instance,
    trace: &[mmd::core::Update],
    batch: usize,
    wave: usize,
    cfg: IngestConfig,
) -> (Vec<IngestOutcome>, IngestEngine) {
    let engine = IngestEngine::new(inst.clone(), cfg).unwrap();
    let ingest = AsyncIngest::new(engine);
    let waiter = ingest.waiter();
    let mut outcomes = Vec::new();
    let chunks: Vec<&[mmd::core::Update]> = trace.chunks(batch).collect();
    for chunk_wave in chunks.chunks(wave.max(1)) {
        let epochs: Vec<u64> = chunk_wave
            .iter()
            .map(|chunk| ingest.apply_async(chunk.to_vec()).unwrap())
            .collect();
        for epoch in epochs {
            outcomes.push(waiter.wait(epoch).unwrap());
        }
    }
    (outcomes, ingest.shutdown())
}

/// Asserts two per-batch outcome sequences carry bit-identical certified
/// brackets (`utility ≤ OPT ≤ upper_bound`) and identical re-solve work.
fn assert_brackets_match(sync: &[IngestOutcome], async_: &[IngestOutcome], context: &str) {
    assert_eq!(sync.len(), async_.len(), "{context}: batch counts diverge");
    for (b, (s, a)) in sync.iter().zip(async_).enumerate() {
        assert_eq!(
            s.utility.to_bits(),
            a.utility.to_bits(),
            "{context} batch {b}: utility diverges ({} vs {})",
            s.utility,
            a.utility
        );
        assert_eq!(
            s.upper_bound.to_bits(),
            a.upper_bound.to_bits(),
            "{context} batch {b}: upper bound diverges"
        );
        assert_eq!(
            s.gap_fraction.to_bits(),
            a.gap_fraction.to_bits(),
            "{context} batch {b}: gap diverges"
        );
        assert_eq!(s.updates_applied, a.updates_applied, "{context} batch {b}");
        assert_eq!(s.dirty_shards, a.dirty_shards, "{context} batch {b}");
        assert_eq!(s.resolved_shards, a.resolved_shards, "{context} batch {b}");
        assert_eq!(s.full_resolve, a.full_resolve, "{context} batch {b}");
    }
}

#[test]
fn async_apply_matches_sync_apply_on_mixed_churn() {
    let inst = ClusteredConfig::decomposable(6, 5, 4).generate(17);
    let trace = ChurnConfig::mixed(120).generate(&inst, 5);
    let cfg = config(0, 2);
    let (sync_outcomes, sync_engine) = replay_sync(&inst, &trace, 6, cfg);
    let (async_outcomes, async_engine) = replay_async(&inst, &trace, 6, 4, cfg);
    assert_brackets_match(&sync_outcomes, &async_outcomes, "mixed-churn");
    assert_eq!(sync_engine.assignment(), async_engine.assignment());
    assert_eq!(
        sync_engine.utility().to_bits(),
        async_engine.utility().to_bits()
    );
    assert_matches_scratch(&async_engine, "async final state");
}

/// The CI soak: a 10k-update fixed-seed mixed-churn trace, verified
/// against from-scratch solves periodically and at the end, at 1 and 8
/// threads. Ignored by default (long-haul); the `ingest-soak` CI step runs
/// it in the release profile with `--include-ignored` on the multi-core
/// runner, where the 8-thread replay is real parallelism.
#[test]
#[ignore = "soak: run explicitly (CI ingest-soak step)"]
fn soak_10k_update_trace() {
    // 16 communities with batches of 8: a mixed-churn batch touches at
    // most half the communities, so the incremental path (not just the
    // full-re-solve escalation) carries most of the 1250 applies.
    let inst = ClusteredConfig::decomposable(16, 8, 6).generate(2024);
    let trace = ChurnConfig {
        budget_fraction: 0.02,
        ..ChurnConfig::mixed(10_000)
    }
    .generate(&inst, 2024);
    let batch = 8usize;

    let mut finals = Vec::new();
    for threads in [1usize, 8] {
        let mut engine = IngestEngine::new(inst.clone(), config(0, threads)).unwrap();
        let mut resolved = 0usize;
        let mut slots = 0usize;
        for (b, chunk) in trace.chunks(batch).enumerate() {
            for update in chunk {
                engine.push(update.clone()).unwrap();
            }
            let outcome = engine.apply().unwrap();
            resolved += outcome.resolved_shards;
            slots += outcome.num_shards;
            // Periodic differential anchor (every 25 batches) plus the
            // final batch.
            if b % 25 == 0 {
                assert_matches_scratch(&engine, &format!("threads {threads} batch {b}"));
            }
        }
        assert_matches_scratch(&engine, &format!("threads {threads} final"));
        assert!(
            resolved < slots,
            "threads {threads}: the soak must exercise the incremental path \
             ({resolved}/{slots} slots re-solved)"
        );
        finals.push((engine.utility(), engine.assignment().clone()));
    }
    let (u1, a1) = &finals[0];
    let (u8, a8) = &finals[1];
    assert_eq!(u1.to_bits(), u8.to_bits(), "soak: 1 vs 8 threads utility");
    assert_eq!(a1, a8, "soak: 1 vs 8 threads assignment");
}

/// The CI soak's asynchronous twin: the same 10k-update trace driven
/// through `AsyncIngest::apply_async` (submitted in deep waves, so the
/// solver thread works behind a real queue) AND through the synchronous
/// `apply`, with every batch's certified `utility ≤ OPT ≤ upper_bound`
/// bracket diffed bit-for-bit between the two paths — then the final
/// committed state anchored against a from-scratch sharded solve.
#[test]
#[ignore = "soak: run explicitly (CI ingest-soak step)"]
fn soak_10k_update_trace_async_matches_sync() {
    let inst = ClusteredConfig::decomposable(16, 8, 6).generate(2024);
    let trace = ChurnConfig {
        budget_fraction: 0.02,
        ..ChurnConfig::mixed(10_000)
    }
    .generate(&inst, 2024);
    let batch = 8usize;
    let cfg = config(0, 8);

    let (sync_outcomes, sync_engine) = replay_sync(&inst, &trace, batch, cfg);
    // Waves of 256 epochs stay inside the async outcome-retention window
    // while keeping the solver's queue genuinely deep.
    let (async_outcomes, async_engine) = replay_async(&inst, &trace, batch, 256, cfg);

    assert_brackets_match(&sync_outcomes, &async_outcomes, "10k soak");
    assert_eq!(
        sync_engine.utility().to_bits(),
        async_engine.utility().to_bits(),
        "10k soak: final utility diverges"
    );
    assert_eq!(
        sync_engine.assignment(),
        async_engine.assignment(),
        "10k soak: final assignment diverges"
    );
    assert_matches_scratch(&async_engine, "10k soak async final state");
}
