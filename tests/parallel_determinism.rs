//! Determinism of the parallel runtime: every parallel entry point must
//! produce **bit-identical** results to its sequential counterpart, at any
//! thread count, on arbitrary instances.
//!
//! This is the contract that makes `--threads` safe to turn on in
//! production: parallelism buys wall time and nothing else. The one
//! documented exception is `exact::solve`'s *witness* between tied optima
//! (the value is still exact and thread-count independent).

use mmd::core::algo::classify::{ClassifyConfig, SmdSolverKind};
use mmd::core::algo::reduction::{solve_mmd, MmdConfig};
use mmd::core::algo::{self, solve_batch, Feasibility, PartialEnumConfig};
use mmd::core::{Instance, StreamId};
use mmd::exact::{solve as exact_solve, ExactConfig, Objective};
use proptest::collection;
use proptest::prelude::*;

/// Strategy: a small random multi-budget mmd instance (m budgets, up to
/// one user capacity measure each).
fn mmd_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..9,    // streams
        1usize..6,    // users
        1usize..4,    // server measures
        0.25f64..0.9, // budget fraction
        any::<u64>(), // value seed
    )
        .prop_map(|(ns, nu, m, frac, seed)| {
            // Derive all values deterministically from the seed.
            let mut x = seed;
            let mut next = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
            };
            let costs: Vec<Vec<f64>> = (0..ns)
                .map(|_| (0..m).map(|_| 0.5 + 4.0 * next()).collect())
                .collect();
            let budgets: Vec<f64> = (0..m)
                .map(|i| {
                    let total: f64 = costs.iter().map(|c| c[i]).sum();
                    let max_single = costs.iter().map(|c| c[i]).fold(0.0, f64::max);
                    (total * frac).max(max_single)
                })
                .collect();
            let mut b = Instance::builder("par-prop").server_budgets(budgets);
            let streams: Vec<StreamId> = costs.iter().map(|c| b.add_stream(c.clone())).collect();
            for _ in 0..nu {
                let cap = 1.0 + 8.0 * next();
                let constrained = next() < 0.7;
                let u = b.add_user(cap, if constrained { vec![cap] } else { vec![] });
                for &s in &streams {
                    if next() < 0.6 {
                        let w = (0.2 + 3.0 * next()).min(cap);
                        let loads = if constrained { vec![w] } else { vec![] };
                        b.add_interest(u, s, w, loads).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `solve_batch` at any thread count is bit-identical to solving each
    /// instance sequentially, in input order.
    #[test]
    fn solve_batch_is_thread_count_invariant(instances in collection::vec(mmd_instance(), 2..6)) {
        let config = MmdConfig::default();
        let reference: Vec<_> = instances
            .iter()
            .map(|inst| solve_mmd(inst, &config).unwrap())
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let batch = solve_batch(&instances, &config, threads);
            prop_assert_eq!(batch.len(), reference.len());
            for (got, want) in batch.iter().zip(&reference) {
                let got = got.as_ref().unwrap();
                // Bit-identical: exact f64 equality and assignment equality.
                prop_assert_eq!(got.utility, want.utility);
                prop_assert_eq!(&got.assignment, &want.assignment);
                prop_assert_eq!(got.num_buckets, want.num_buckets);
                prop_assert_eq!(got.server_groups, want.server_groups);
            }
        }
    }

    /// Intra-solve parallelism (classify buckets + §4 user stage) is
    /// bit-identical to the sequential pipeline.
    #[test]
    fn solve_mmd_with_threads_is_bit_identical(inst in mmd_instance()) {
        let seq = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        for threads in [2usize, 4] {
            let par = solve_mmd(&inst, &MmdConfig::default().with_threads(threads)).unwrap();
            prop_assert_eq!(par.utility, seq.utility);
            prop_assert_eq!(&par.assignment, &seq.assignment);
        }
    }

    /// The partial-enumeration seed sweep picks the same winner in
    /// parallel as sequentially (reduction is in enumeration order).
    #[test]
    fn partial_enum_sweep_is_bit_identical(inst in mmd_instance()) {
        // Reduce to single-budget first: §2.3 requires it.
        let smd = mmd::core::algo::reduction::to_single_budget(&inst);
        let seq_cfg = PartialEnumConfig { max_seed_size: 2, seed_limit: None, threads: 1 };
        let seq = algo::solve_smd_partial_enum(&smd, &seq_cfg, Feasibility::SemiFeasible).unwrap();
        for threads in [2usize, 4] {
            let par_cfg = PartialEnumConfig { threads, ..seq_cfg };
            let par =
                algo::solve_smd_partial_enum(&smd, &par_cfg, Feasibility::SemiFeasible).unwrap();
            prop_assert_eq!(par.utility, seq.utility);
            prop_assert_eq!(&par.assignment, &seq.assignment);
        }
    }

    /// Parallel branch-and-bound finds the sequential optimum, for both
    /// objectives, with and without the completion bound. Tolerance is a
    /// relative ULP-scale epsilon: between *tied* optimal sets the two
    /// searches may legitimately pick witnesses whose canonical values
    /// differ in the last floating-point bits.
    #[test]
    fn exact_parallel_finds_same_optimum(inst in mmd_instance(), use_bound in any::<bool>()) {
        for objective in [Objective::SemiFeasible, Objective::Feasible] {
            let seq = exact_solve(
                &inst,
                &ExactConfig { objective, use_bound, ..ExactConfig::default() },
            )
            .unwrap();
            for threads in [2usize, 4] {
                let par = exact_solve(
                    &inst,
                    &ExactConfig { objective, use_bound, threads, ..ExactConfig::default() },
                )
                .unwrap();
                let tol = 1e-9 * seq.value.abs().max(1.0);
                prop_assert!(
                    (par.value - seq.value).abs() <= tol,
                    "threads {}: {} vs {}", threads, par.value, seq.value
                );
            }
        }
    }
}

/// The classify layer's per-bucket parallelism alone (through `solve_smd`)
/// is bit-identical on a fixed high-skew instance, where several buckets
/// are actually populated.
#[test]
fn classify_buckets_parallel_bit_identical() {
    let mut b = Instance::builder("skewed-par").server_budgets(vec![40.0]);
    let streams: Vec<StreamId> = (0..12).map(|_| b.add_stream(vec![2.0])).collect();
    for ui in 0..6 {
        let u = b.add_user(f64::INFINITY, vec![12.0 + ui as f64]);
        for (si, &s) in streams.iter().enumerate() {
            let k = 2.0 + ((si + ui) % 3) as f64;
            let ratio = (1 << ((si + 2 * ui) % 5)) as f64;
            b.add_interest(u, s, k * ratio, vec![k]).unwrap();
        }
    }
    let inst = b.build().unwrap();
    let seq = mmd::core::algo::solve_smd(&inst, &ClassifyConfig::default()).unwrap();
    assert!(seq.num_buckets > 1, "test needs several buckets");
    for threads in [2usize, 4, 8] {
        let cfg = ClassifyConfig {
            solver: SmdSolverKind::FixedGreedy,
            mode: Feasibility::Strict,
            threads,
        };
        let par = mmd::core::algo::solve_smd(&inst, &cfg).unwrap();
        assert_eq!(par.utility, seq.utility);
        assert_eq!(par.assignment, seq.assignment);
        assert_eq!(par.per_bucket_utilities, seq.per_bucket_utilities);
    }
}

/// A larger smoke batch through `solve_batch`, mirroring what the perf
/// harness runs, pinned for bit-identity across a spread of thread counts.
#[test]
fn workload_batch_thread_sweep() {
    use mmd::workload::{CatalogConfig, PopulationConfig, WorkloadConfig};
    let instances: Vec<Instance> = (0..6)
        .map(|seed| {
            WorkloadConfig {
                catalog: CatalogConfig {
                    streams: 24,
                    measures: 2,
                    ..CatalogConfig::default()
                },
                population: PopulationConfig {
                    users: 14,
                    user_measures: 1,
                    ..PopulationConfig::default()
                },
                budget_fraction: 0.3,
                ..WorkloadConfig::default()
            }
            .generate(seed)
        })
        .collect();
    let reference = solve_batch(&instances, &MmdConfig::default(), 1);
    for threads in [0usize, 2, 3, 4, 7] {
        let got = solve_batch(&instances, &MmdConfig::default(), threads);
        for (g, w) in got.iter().zip(&reference) {
            let (g, w) = (g.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(g.utility, w.utility);
            assert_eq!(g.assignment, w.assignment);
        }
    }
}
