//! Cross-crate integration: workload generators → core solvers → exact
//! verification.

use mmd::core::algo::classify::{ClassifyConfig, SmdSolverKind};
use mmd::core::algo::reduction::{solve_mmd, to_single_budget, MmdConfig};
use mmd::core::algo::{self, Feasibility, PartialEnumConfig};
use mmd::exact::bounds::fractional_upper_bound;
use mmd::exact::{solve, ExactConfig, Objective};
use mmd::workload::special::{unit_skew_smd, SmdFamilyConfig};
use mmd::workload::{CatalogConfig, PopulationConfig, WorkloadConfig};

fn small_workload(seed: u64, m: usize, mc: usize) -> mmd::Instance {
    WorkloadConfig {
        catalog: CatalogConfig {
            streams: 14,
            measures: m,
            ..CatalogConfig::default()
        },
        population: PopulationConfig {
            users: 7,
            user_measures: mc,
            ..PopulationConfig::default()
        },
        budget_fraction: 0.35,
        ..WorkloadConfig::default()
    }
    .generate(seed)
}

#[test]
fn pipeline_feasible_on_many_shapes() {
    for m in 1..=4usize {
        for mc in 0..=2usize {
            for seed in 0..5u64 {
                let inst = small_workload(seed, m, mc);
                let out = solve_mmd(&inst, &MmdConfig::default()).unwrap();
                out.assignment
                    .check_feasible(&inst)
                    .unwrap_or_else(|e| panic!("m={m} mc={mc} seed={seed}: {e:?}"));
            }
        }
    }
}

#[test]
fn pipeline_never_exceeds_upper_bound() {
    for seed in 0..10u64 {
        let inst = small_workload(seed, 2, 1);
        let out = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        let ub = fractional_upper_bound(&inst);
        assert!(
            out.utility <= ub + 1e-6,
            "seed {seed}: utility {} > bound {ub}",
            out.utility
        );
    }
}

#[test]
fn pipeline_matches_exact_within_theorem_bound() {
    // Theorem 4.4 bound with our constants is loose; we assert the much
    // tighter empirical envelope (ratio <= 4) to catch regressions, and the
    // theorem bound as a hard backstop.
    for seed in 0..10u64 {
        let inst = small_workload(seed, 2, 1);
        let opt = solve(
            &inst,
            &ExactConfig {
                objective: Objective::Feasible,
                max_user_degree: 30,
                ..ExactConfig::default()
            },
        )
        .unwrap()
        .value;
        if opt <= 0.0 {
            continue;
        }
        let out = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        let ratio = opt / out.utility.max(1e-12);
        assert!(ratio <= 4.0, "seed {seed}: ratio {ratio}");
    }
}

#[test]
fn faithful_pipeline_still_sound() {
    let cfg = MmdConfig {
        residual_fill: false,
        faithful_output_transform: true,
        ..MmdConfig::default()
    };
    for seed in 0..10u64 {
        let inst = small_workload(seed, 3, 2);
        let out = solve_mmd(&inst, &cfg).unwrap();
        out.assignment.check_feasible(&inst).unwrap();
        // Default dominates faithful (refinements only add).
        let default = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        assert!(default.utility >= out.utility - 1e-9);
    }
}

#[test]
fn partial_enum_dominates_fixed_greedy_through_classify() {
    for seed in 0..6u64 {
        let inst = unit_skew_smd(
            &SmdFamilyConfig {
                streams: 10,
                users: 5,
                density: 0.5,
                budget_fraction: 0.35,
            },
            seed,
        );
        let fg = algo::solve_smd_unit(&inst, Feasibility::SemiFeasible).unwrap();
        let pe = algo::solve_smd_partial_enum(
            &inst,
            &PartialEnumConfig {
                max_seed_size: 2,
                seed_limit: None,
                threads: 1,
            },
            Feasibility::SemiFeasible,
        )
        .unwrap();
        assert!(pe.utility >= fg.utility - 1e-9, "seed {seed}");
    }
}

#[test]
fn classify_solver_choice_is_wired_through_mmd() {
    let inst = small_workload(3, 2, 1);
    let fast = solve_mmd(&inst, &MmdConfig::default()).unwrap();
    let strong = solve_mmd(
        &inst,
        &MmdConfig {
            classify: ClassifyConfig {
                solver: SmdSolverKind::PartialEnum(PartialEnumConfig {
                    max_seed_size: 1,
                    seed_limit: Some(200),
                    threads: 1,
                }),
                mode: Feasibility::Strict,
                ..ClassifyConfig::default()
            },
            ..MmdConfig::default()
        },
    )
    .unwrap();
    assert!(strong.assignment.check_feasible(&inst).is_ok());
    assert!(fast.assignment.check_feasible(&inst).is_ok());
}

#[test]
fn reduction_preserves_utilities_and_ids() {
    let inst = small_workload(5, 3, 2);
    let red = to_single_budget(&inst);
    assert_eq!(red.num_streams(), inst.num_streams());
    assert_eq!(red.num_users(), inst.num_users());
    for u in inst.users() {
        for s in inst.streams() {
            assert_eq!(inst.utility(u, s), red.utility(u, s));
        }
    }
}

#[test]
fn exact_semi_dominates_exact_feasible() {
    for seed in 0..6u64 {
        let inst = small_workload(seed, 1, 1);
        let semi = solve(&inst, &ExactConfig::default()).unwrap().value;
        let feas = solve(
            &inst,
            &ExactConfig {
                objective: Objective::Feasible,
                max_user_degree: 30,
                ..ExactConfig::default()
            },
        )
        .unwrap()
        .value;
        assert!(
            semi >= feas - 1e-9,
            "seed {seed}: semi {semi} < feas {feas}"
        );
        let ub = fractional_upper_bound(&inst);
        assert!(ub >= semi - 1e-6, "seed {seed}: ub {ub} < semi {semi}");
    }
}
