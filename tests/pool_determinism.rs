//! Determinism and lifecycle torture for the persistent worker pool
//! (`mmd_par::Pool`).
//!
//! The pool's contract is the same as the rest of the parallel runtime:
//! **bit-identical** results to the sequential path, at any worker count,
//! any chunk grain, and any interleaving — including oversubscription
//! (more workers than cores) and repeated pool shutdown/restart. The
//! ignored `storm_*` cases are the CI `pool-stress` step's long-haul runs
//! (release profile, `--include-ignored`), where oversubscription on the
//! multi-core runner produces real preemption.

use mmd::core::algo::{solve_batch, MmdConfig};
use mmd::core::Instance;
use mmd::par::Pool;

/// The grain ladder every bit-identity check sweeps: single-item claims
/// (maximum interleaving), a mid grain, and the clamp ceiling.
const GRAINS: [usize; 3] = [1, 4, 64];

/// A deterministic item kernel whose value depends only on the item.
fn kernel(i: usize) -> f64 {
    let mut x = (i as f64).mul_add(0.707_106_781_186_547_5, 2.5);
    for _ in 0..64 {
        x = (x + 3.0 / x) * 0.5 + 1.0 / (x + 1.0);
    }
    x
}

/// A tiny seeded LCG for the storm schedules (no external RNG crates).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn sequential(items: &[usize]) -> Vec<f64> {
    items.iter().map(|&i| kernel(i)).collect()
}

#[test]
fn oversubscribed_pool_matches_sequential_bit_for_bit() {
    // 16 workers on any host — far more than this container's cores — so
    // chunk claims genuinely race.
    let pool = Pool::new(16);
    let items: Vec<usize> = (0..513).collect();
    let want = sequential(&items);
    for threads in [2usize, 5, 16, 40] {
        for grain in GRAINS {
            let got = pool.parallel_map(threads, &items, Some(grain), |_, &i| kernel(i));
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "threads {threads} grain {grain}: value drift"
                );
            }
        }
    }
}

#[test]
fn global_pool_grain_ladder_is_bit_identical() {
    let items: Vec<usize> = (0..257).collect();
    let want = sequential(&items);
    let default = mmd::par::parallel_map(0, &items, |_, &i| kernel(i));
    assert_eq!(default.len(), want.len());
    for grain in GRAINS {
        let got = mmd::par::parallel_map_with_grain(0, &items, grain, |_, &i| kernel(i));
        for ((g, d), w) in got.iter().zip(&default).zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "grain {grain} vs sequential");
            assert_eq!(g.to_bits(), d.to_bits(), "grain {grain} vs default grain");
        }
    }
}

/// Seeded shutdown/restart storm: pools are created with varying worker
/// counts, used across the grain ladder, and dropped — every drop must
/// join its workers (no leaks, no hangs) and every use must be
/// bit-identical to sequential.
fn storm(seed: u64, rounds: usize, max_items: usize) {
    let mut rng = Lcg(seed);
    for round in 0..rounds {
        let workers = 1 + rng.pick(16);
        let pool = Pool::new(workers);
        let uses = 1 + rng.pick(3);
        for _ in 0..uses {
            let n = 1 + rng.pick(max_items);
            let offset = rng.pick(1_000);
            let items: Vec<usize> = (offset..offset + n).collect();
            let want = sequential(&items);
            let threads = 1 + rng.pick(workers + 4);
            let grain = GRAINS[rng.pick(GRAINS.len())];
            let got = pool.parallel_map(threads, &items, Some(grain), |_, &i| kernel(i));
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "seed {seed} round {round}: workers {workers} threads {threads} \
                     grain {grain} diverged"
                );
            }
        }
        drop(pool); // joins all workers; a hang here fails the test by timeout
    }
}

#[test]
fn shutdown_restart_storm_short() {
    storm(7, 12, 96);
}

/// CI `pool-stress` rung: a long seeded storm in release mode.
#[test]
#[ignore = "pool-stress: run explicitly (CI pool-stress step)"]
fn storm_long_seeded_shutdown_restart() {
    for seed in [1u64, 42, 2024] {
        storm(seed, 120, 768);
    }
}

/// CI `pool-stress` rung: sustained oversubscribed traffic through ONE
/// pool from many submitter threads at once, with nested submissions —
/// the caller-executes rule must keep this deadlock-free, and every
/// result bit-identical.
#[test]
#[ignore = "pool-stress: run explicitly (CI pool-stress step)"]
fn storm_concurrent_submitters_with_nesting() {
    let pool = Pool::new(12);
    let items: Vec<usize> = (0..301).collect();
    let want = sequential(&items);
    std::thread::scope(|scope| {
        for submitter in 0..8usize {
            let pool = &pool;
            let items = &items;
            let want = &want;
            scope.spawn(move || {
                for round in 0..150usize {
                    let grain = GRAINS[(submitter + round) % GRAINS.len()];
                    let got = pool.parallel_map(6, items, Some(grain), |_, &i| {
                        if i % 97 == 0 {
                            // A nested submission from inside a chunk: the
                            // inner map must complete on the same pool.
                            let inner: Vec<usize> = (0..5).map(|j| i + j).collect();
                            let nested = pool.parallel_map(2, &inner, Some(1), |_, &j| kernel(j));
                            assert_eq!(nested[0].to_bits(), kernel(i).to_bits());
                        }
                        kernel(i)
                    });
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "submitter {submitter} round {round} grain {grain}"
                        );
                    }
                }
            });
        }
    });
}

/// The production entry point above the pool: `solve_batch` stays
/// bit-identical to sequential solving across thread counts and grains
/// now that it dispatches through the persistent pool.
#[test]
fn solve_batch_through_the_pool_is_bit_identical() {
    let instances: Vec<Instance> = (0..9)
        .map(|i| {
            let mut b = Instance::builder(format!("pd{i}")).server_budgets(vec![9.0 + i as f64]);
            let streams: Vec<_> = (0..6)
                .map(|j| b.add_stream(vec![1.0 + ((i + j) % 4) as f64]))
                .collect();
            let users: Vec<_> = (0..4).map(|j| b.add_user(5.0 + j as f64, vec![])).collect();
            for (si, &s) in streams.iter().enumerate() {
                for (ui, &u) in users.iter().enumerate() {
                    let w = ((si * 3 + ui * 5 + i) % 5) as f64;
                    if w > 0.0 {
                        b.add_interest(u, s, w, vec![]).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
        .collect();
    let config = MmdConfig::default();
    let reference = solve_batch(&instances, &config, 1);
    for threads in [0usize, 2, 4, 9, 17] {
        let got = solve_batch(&instances, &config, threads);
        for (g, w) in got.iter().zip(&reference) {
            let (g, w) = (g.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(
                g.utility.to_bits(),
                w.utility.to_bits(),
                "threads {threads}"
            );
            assert_eq!(g.assignment, w.assignment, "threads {threads}");
        }
    }
}

#[test]
fn pool_panics_propagate_and_leave_the_pool_usable() {
    let pool = Pool::new(4);
    let items: Vec<usize> = (0..64).collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.parallel_map(4, &items, Some(1), |_, &i| {
            assert!(i != 33, "determinism torture panic");
            kernel(i)
        })
    }));
    assert!(caught.is_err(), "the chunk panic must surface");
    // The batch was cancelled, not wedged: the pool still works.
    let want = sequential(&items);
    let got = pool.parallel_map(4, &items, Some(4), |_, &i| kernel(i));
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}
