//! Property-based tests of the core invariants, over randomly generated
//! instances.

use mmd::core::algo::reduction::{interval_partition, residual_fill, solve_mmd, MmdConfig};
use mmd::core::algo::shard::{shard_instance, solve_sharded, ShardConfig};
use mmd::core::algo::{self, Feasibility};
use mmd::core::coverage;
use mmd::core::{Assignment, Instance, StreamId, UserId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a small random smd (single-budget) instance.
fn smd_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..8,    // streams
        1usize..5,    // users
        0.2f64..0.9,  // budget fraction
        any::<u64>(), // value seed
    )
        .prop_map(|(ns, nu, frac, seed)| {
            // Derive all values deterministically from the seed.
            let mut x = seed;
            let mut next = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
            };
            let costs: Vec<f64> = (0..ns).map(|_| 0.5 + 4.0 * next()).collect();
            let total: f64 = costs.iter().sum();
            let budget = (total * frac).max(costs.iter().cloned().fold(0.0, f64::max));
            let mut b = Instance::builder("prop").server_budgets(vec![budget]);
            let streams: Vec<StreamId> = costs.iter().map(|&c| b.add_stream(vec![c])).collect();
            for _ in 0..nu {
                let cap = 1.0 + 8.0 * next();
                let u = b.add_user(cap, vec![cap]);
                for &s in &streams {
                    if next() < 0.6 {
                        let w = (0.2 + 3.0 * next()).min(cap);
                        b.add_interest(u, s, w, vec![w]).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2.1: the capped utility set function is submodular and
    /// nondecreasing on every instance.
    #[test]
    fn coverage_submodular(inst in smd_instance(), mask_t in any::<u32>(), mask_tp in any::<u32>()) {
        let n = inst.num_streams();
        let set = |mask: u32| -> BTreeSet<StreamId> {
            (0..n).filter(|i| mask & (1 << (i % 32)) != 0).map(StreamId::new).collect()
        };
        let t = set(mask_t);
        let tp = set(mask_tp);
        let union: BTreeSet<_> = t.union(&tp).copied().collect();
        let inter: BTreeSet<_> = t.intersection(&tp).copied().collect();
        let lhs = coverage::eval_set(&inst, &t) + coverage::eval_set(&inst, &tp);
        let rhs = coverage::eval_set(&inst, &union) + coverage::eval_set(&inst, &inter);
        prop_assert!(lhs >= rhs - 1e-9);
        // Monotone: w(T) <= w(T ∪ T').
        prop_assert!(coverage::eval_set(&inst, &t) <= coverage::eval_set(&inst, &union) + 1e-9);
    }

    /// Greedy output is always server-feasible; strict mode output is fully
    /// feasible; the semi-feasible utility dominates the strict one.
    #[test]
    fn greedy_feasibility(inst in smd_instance()) {
        let semi = algo::solve_smd_unit(&inst, Feasibility::SemiFeasible).unwrap();
        prop_assert!(semi.assignment.check_semi_feasible(&inst).is_ok());
        let strict = algo::solve_smd_unit(&inst, Feasibility::Strict).unwrap();
        prop_assert!(strict.assignment.check_feasible(&inst).is_ok());
        prop_assert!(semi.utility >= strict.utility - 1e-9);
        // Strict keeps at least 1/3 of semi (A1+A2+Amax argument).
        prop_assert!(strict.utility * 3.0 >= semi.utility - 1e-9);
    }

    /// The full pipeline always returns a feasible assignment whose utility
    /// matches its report.
    #[test]
    fn pipeline_report_consistent(inst in smd_instance()) {
        let out = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        prop_assert!(out.assignment.check_feasible(&inst).is_ok());
        let recomputed = out.assignment.utility(&inst);
        prop_assert!((out.utility - recomputed).abs() < 1e-9);
    }

    /// Residual fill never lowers utility and never breaks feasibility.
    #[test]
    fn residual_fill_monotone(inst in smd_instance()) {
        let out = solve_mmd(&inst, &MmdConfig {
            residual_fill: false,
            ..MmdConfig::default()
        }).unwrap();
        let before = out.assignment.utility(&inst);
        let mut filled = out.assignment.clone();
        residual_fill(&inst, &mut filled);
        prop_assert!(filled.utility(&inst) >= before - 1e-9);
        prop_assert!(filled.check_feasible(&inst).is_ok());
    }

    /// Fig. 3 invariants: partition in order, non-singleton groups within
    /// the threshold, group count bounded.
    #[test]
    fn interval_partition_invariants(
        costs in proptest::collection::vec(0.0f64..2.0, 0..24),
        threshold in 0.5f64..4.0,
    ) {
        let groups = interval_partition(&costs, threshold);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..costs.len()).collect::<Vec<_>>());
        for g in &groups {
            if g.len() > 1 {
                let total: f64 = g.iter().map(|&i| costs[i]).sum();
                prop_assert!(total <= threshold + 1e-6);
            }
        }
        let total: f64 = costs.iter().sum();
        let bound = 2 * (total / threshold).ceil() as usize + 1;
        prop_assert!(groups.len() <= bound.max(1));
    }

    /// The online allocator (faithful, no guard) keeps every budget on any
    /// instance whose streams satisfy the smallness hypothesis (Lemma 5.1),
    /// regardless of arrival order.
    #[test]
    fn online_lemma_5_1_property(seed in any::<u64>(), order_seed in any::<u64>()) {
        use mmd::core::algo::online::{OnlineAllocator, OnlineConfig};
        use mmd::workload::special::small_streams;
        let inst = small_streams(24, 4, 1, seed % 1000);
        // Arbitrary deterministic permutation of the arrival order.
        let mut order: Vec<StreamId> = inst.streams().collect();
        let n = order.len();
        let mut x = order_seed | 1;
        for i in (1..n).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let report = OnlineAllocator::run(&inst, order, OnlineConfig::default()).unwrap();
        prop_assert!(report.smallness.ok);
        prop_assert!(report.assignment.check_feasible(&inst).is_ok());
    }

    /// Shard partitioner invariants (any instance, any cap): every stream
    /// and every user lands in exactly one shard; no shard exceeds the
    /// stream cap; the shard interests plus the cut interests reassemble
    /// the original instance's interests exactly; `cut_mass` is their
    /// utility sum; and an uncapped sharding never cuts anything.
    #[test]
    fn shard_partition_invariants(inst in smd_instance(), cap in 0usize..6) {
        let sharding = shard_instance(&inst, cap);

        // Exact partition of streams and users.
        let mut stream_seen = vec![0usize; inst.num_streams()];
        let mut user_seen = vec![0usize; inst.num_users()];
        for shard in &sharding.shards {
            for s in &shard.streams {
                stream_seen[s.index()] += 1;
            }
            for u in &shard.users {
                user_seen[u.index()] += 1;
            }
            if cap > 0 {
                prop_assert!(shard.streams.len() <= cap.max(1));
            }
        }
        prop_assert!(stream_seen.iter().all(|&n| n == 1));
        prop_assert!(user_seen.iter().all(|&n| n == 1));

        // The membership maps agree with the shard lists.
        for (k, shard) in sharding.shards.iter().enumerate() {
            for s in &shard.streams {
                prop_assert_eq!(sharding.shard_of_stream[s.index()], k);
            }
            for u in &shard.users {
                prop_assert_eq!(sharding.shard_of_user[u.index()], k);
            }
        }

        // Reassembly: intra-shard interests + cut interests = original.
        let mut original: BTreeSet<(usize, usize)> = BTreeSet::new();
        for u in inst.users() {
            for interest in inst.user(u).interests() {
                original.insert((u.index(), interest.stream().index()));
            }
        }
        let mut reassembled: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut mass = 0.0f64;
        for u in inst.users() {
            let k = sharding.shard_of_user[u.index()];
            for interest in inst.user(u).interests() {
                if sharding.shard_of_stream[interest.stream().index()] == k {
                    prop_assert!(reassembled.insert((u.index(), interest.stream().index())));
                }
            }
        }
        for cut in &sharding.cut {
            prop_assert_ne!(
                sharding.shard_of_user[cut.user.index()],
                sharding.shard_of_stream[cut.stream.index()]
            );
            prop_assert!(reassembled.insert((cut.user.index(), cut.stream.index())));
            mass += cut.utility;
        }
        prop_assert_eq!(&reassembled, &original);
        prop_assert!((mass - sharding.cut_mass).abs() < 1e-9);

        if cap == 0 {
            prop_assert!(sharding.cut.is_empty());
            prop_assert_eq!(sharding.cut_mass, 0.0);
        }
    }

    /// The sharded solver always returns a feasible assignment whose
    /// utility matches its report and sits inside its own certificate.
    #[test]
    fn sharded_outcome_certified(inst in smd_instance(), cap in 0usize..6) {
        let out = solve_sharded(&inst, &ShardConfig {
            max_streams: cap,
            ..ShardConfig::default()
        }).unwrap();
        prop_assert!(out.assignment.check_feasible(&inst).is_ok());
        let recomputed = out.assignment.utility(&inst);
        prop_assert!((out.utility - recomputed).abs() < 1e-9);
        prop_assert!(out.utility <= out.upper_bound + 1e-9 * out.upper_bound.max(1.0));
        prop_assert!((0.0..=1.0).contains(&out.gap_fraction));
    }

    /// Differential: on random instances and random gain/add/remove
    /// sequences, the struct-of-arrays kernel, the preserved scalar
    /// reference kernel and a from-scratch [`eval_set`] recomputation agree
    /// on every intermediate `gain`, realized delta, `user_raw` and
    /// `value` (to ULP-scale tolerance; the kernels differ only in
    /// accumulation order and compensation). The solver-level 1–8 thread
    /// determinism suite (`tests/parallel_determinism.rs`) pins the same
    /// kernel underneath every solver family at every thread count.
    #[test]
    fn coverage_kernels_differentially_equal(inst in smd_instance(), seed in any::<u64>()) {
        let mut soa = coverage::CoverageState::new(&inst);
        let mut scalar = coverage::ScalarCoverageState::new(&inst);
        let n = inst.num_streams();
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let tol = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        for _ in 0..200 {
            let s = StreamId::new(next() as usize % n);
            let g_soa = soa.gain(s);
            let g_scalar = scalar.gain(s);
            prop_assert!(tol(g_soa, g_scalar), "gain {} vs {}", g_soa, g_scalar);
            if soa.set().contains(&s) && next() % 4 != 0 {
                soa.remove(s);
                scalar.remove(s);
            } else {
                let a = soa.add(s);
                let b = scalar.add(s);
                prop_assert!(tol(a, b), "add {} vs {}", a, b);
            }
            prop_assert_eq!(soa.set(), scalar.set());
            prop_assert!(tol(soa.value(), scalar.value()));
            let exact = coverage::eval_set(&inst, soa.set());
            prop_assert!(tol(soa.value(), exact), "soa {} vs eval {}", soa.value(), exact);
            for u in inst.users() {
                prop_assert!(tol(soa.user_raw(u), scalar.user_raw(u)));
                let head = soa.headroom(u);
                let cap = inst.user(u).utility_cap();
                prop_assert!(tol(head, (cap - soa.user_raw(u)).max(0.0)));
            }
        }
    }

    /// Regression (float drift): long add/remove interleavings must keep the
    /// incremental `value` in tight agreement with an exact [`eval_set`]
    /// recomputation. The pre-SoA kernel accumulated `+=`/`-=` deltas into
    /// plain `f64` accumulators, so a heavy stream whose weight dwarfs the
    /// light ones systematically absorbed their low-order bits (both in the
    /// per-user raw sums and in `value`), and sweeps like partial
    /// enumeration or shard repair drifted away from `eval_set`.
    #[test]
    fn coverage_value_no_drift_under_interleaving(seed in any::<u64>()) {
        let mut b = Instance::builder("drift").server_budgets(vec![f64::INFINITY]);
        // One heavy stream (utility 1e16) and two dozen light ones (O(1))
        // sharing two users: an uncapped user (value-accumulator drift) and
        // a finite-cap user (raw-accumulator drift through the cap clamp).
        let heavy = b.add_stream(vec![1.0]);
        let light: Vec<StreamId> = (0..24).map(|_| b.add_stream(vec![1.0])).collect();
        let u_free = b.add_user(f64::INFINITY, vec![]);
        let u_capped = b.add_user(8.0, vec![]);
        b.add_interest(u_free, heavy, 1e16, vec![]).unwrap();
        b.add_interest(u_capped, heavy, 1e16, vec![]).unwrap();
        for (i, &s) in light.iter().enumerate() {
            let w = 0.1 + (i as f64) * 0.017 + 1.0 / 3.0;
            b.add_interest(u_free, s, w, vec![]).unwrap();
            b.add_interest(u_capped, s, w * 0.25, vec![]).unwrap();
        }
        let inst = b.build().unwrap();

        let mut state = coverage::CoverageState::new(&inst);
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..10_000u32 {
            // Toggle a random stream, with the heavy one toggled often so
            // light contributions keep crossing the 1e16 magnitude cliff.
            let r = next();
            let s = if r % 3 == 0 {
                heavy
            } else {
                light[(r / 3) as usize % light.len()]
            };
            if state.set().contains(&s) {
                state.remove(s);
            } else {
                let predicted = state.gain(s);
                let realized = state.add(s);
                prop_assert!(
                    (predicted - realized).abs() <= 1e-9 * predicted.abs().max(1.0),
                    "step {}: gain {} != add {}", step, predicted, realized
                );
            }
            if step % 499 == 0 {
                let exact = coverage::eval_set(&inst, state.set());
                prop_assert!(
                    (state.value() - exact).abs() <= 1e-6 * exact.abs().max(1.0),
                    "step {}: incremental {} drifted from exact {}",
                    step, state.value(), exact
                );
            }
        }
        // Final check at full precision of the recomputation.
        let exact = coverage::eval_set(&inst, state.set());
        prop_assert!(
            (state.value() - exact).abs() <= 1e-6 * exact.abs().max(1.0),
            "final: incremental {} drifted from exact {}", state.value(), exact
        );
    }

    /// Assignment bookkeeping: range refcounts survive arbitrary assign /
    /// unassign interleavings.
    #[test]
    fn assignment_refcounting(ops in proptest::collection::vec(
        (0usize..4, 0usize..6, any::<bool>()), 0..60))
    {
        let mut a = Assignment::new(4);
        let mut model: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); 4];
        for (u, s, add) in ops {
            let user = UserId::new(u);
            let stream = StreamId::new(s);
            if add {
                a.assign(user, stream);
                model[u].insert(s);
            } else {
                a.unassign(user, stream);
                model[u].remove(&s);
            }
        }
        for (u, set) in model.iter().enumerate() {
            let got: BTreeSet<usize> =
                a.streams_of(UserId::new(u)).map(StreamId::index).collect();
            prop_assert_eq!(set, &got);
        }
        let expect_range: BTreeSet<usize> =
            model.iter().flatten().copied().collect();
        let got_range: BTreeSet<usize> = a.range().map(StreamId::index).collect();
        prop_assert_eq!(expect_range, got_range);
    }
}
