//! Differential shard-vs-monolithic suite: the sharded solver is pinned
//! against the monolithic Theorem 1.1 pipeline.
//!
//! * On **exactly-decomposable** instances (disjoint components,
//!   uncontended budget — any budget split then funds every shard fully)
//!   the sharded solve must be **bit-identical** to [`solve_mmd`], at every
//!   thread count and at every shard cap that respects component
//!   boundaries.
//! * On **connected, contended** instances the sharded solve genuinely
//!   cuts interests and splits budgets; its utility must stay within the
//!   certificate's cut-mass bound of the monolithic utility, and the
//!   outcome must be bit-identical across 1–8 threads.

use mmd::core::algo::reduction::{solve_mmd, MmdConfig};
use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::workload::ClusteredConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn sharded(cap: usize) -> ShardConfig {
    ShardConfig {
        max_streams: cap,
        ..ShardConfig::default()
    }
}

#[test]
fn decomposable_is_bit_identical_to_monolithic() {
    for seed in 0..6u64 {
        let inst = ClusteredConfig::decomposable(5, 6, 4).generate(seed);
        let mono = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        // cap 0 = component granularity; cap 6 = exactly the component
        // size; cap 64 = far above it. None may cut anything, and all must
        // reproduce the monolithic solve bit for bit.
        for cap in [0usize, 6, 64] {
            for threads in THREADS {
                let out = solve_sharded(&inst, &sharded(cap).with_threads(threads)).unwrap();
                assert_eq!(out.cut_edges, 0, "seed {seed} cap {cap}");
                assert_eq!(out.cut_mass, 0.0, "seed {seed} cap {cap}");
                assert_eq!(out.num_shards, 5, "seed {seed} cap {cap}");
                assert_eq!(out.repaired_streams, 0, "seed {seed} cap {cap}");
                assert_eq!(
                    out.assignment, mono.assignment,
                    "seed {seed} cap {cap} threads {threads}: assignments diverge"
                );
                assert_eq!(
                    out.utility.to_bits(),
                    mono.utility.to_bits(),
                    "seed {seed} cap {cap} threads {threads}: utility not bit-identical"
                );
            }
        }
    }
}

#[test]
fn connected_sharded_utility_within_cut_mass_bound() {
    for seed in 0..6u64 {
        let inst = ClusteredConfig::contended(4, 8, 6).generate(seed);
        let mono = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        let out = solve_sharded(&inst, &sharded(8)).unwrap();
        assert!(out.assignment.check_feasible(&inst).is_ok(), "seed {seed}");
        assert!(out.cut_edges > 0, "seed {seed}: cross links must be cut");
        assert!(out.num_shards >= 4, "seed {seed}");
        // The certificate brackets both solves: monolithic utility is a
        // lower bound on OPT, so it must sit under the upper bound...
        assert!(
            mono.utility <= out.upper_bound + 1e-9,
            "seed {seed}: mono {} above certificate {}",
            mono.utility,
            out.upper_bound
        );
        assert!(out.utility <= out.upper_bound + 1e-9, "seed {seed}");
        // ...and the sharded utility stays within the relative cut-mass
        // bound of the monolithic solve.
        let cut_fraction = out.cut_mass / out.upper_bound;
        assert!(
            out.utility >= (1.0 - cut_fraction) * mono.utility - 1e-9,
            "seed {seed}: sharded {} < (1 - {cut_fraction:.4}) * mono {}",
            out.utility,
            mono.utility
        );
    }
}

#[test]
fn connected_sharded_is_deterministic_across_threads() {
    for seed in 0..4u64 {
        let inst = ClusteredConfig::contended(4, 8, 6).generate(seed);
        let base = solve_sharded(&inst, &sharded(8)).unwrap();
        for threads in THREADS {
            let out = solve_sharded(&inst, &sharded(8).with_threads(threads)).unwrap();
            assert_eq!(
                out.assignment, base.assignment,
                "seed {seed} threads {threads}"
            );
            assert_eq!(out.utility.to_bits(), base.utility.to_bits());
            assert_eq!(out.upper_bound.to_bits(), base.upper_bound.to_bits());
            assert_eq!(out.cut_edges, base.cut_edges);
        }
    }
}

#[test]
fn uncapped_sharding_of_connected_instance_is_one_shard() {
    // With no size cap a connected instance stays whole: one shard, no
    // cuts, and the sharded path reduces to the monolithic pipeline plus a
    // (possibly improving) residual fill.
    let inst = ClusteredConfig::contended(3, 6, 4).generate(42);
    let mono = solve_mmd(&inst, &MmdConfig::default()).unwrap();
    let out = solve_sharded(&inst, &sharded(0)).unwrap();
    assert_eq!(out.cut_edges, 0);
    assert!(out.num_shards <= 3);
    assert!(out.utility >= mono.utility - 1e-9);
    assert!(out.assignment.check_feasible(&inst).is_ok());
}

#[test]
fn gap_certificate_fields_are_consistent() {
    for seed in [1u64, 5, 9] {
        let inst = ClusteredConfig::contended(4, 6, 5).generate(seed);
        for cap in [0usize, 6, 12] {
            let out = solve_sharded(&inst, &sharded(cap)).unwrap();
            assert!(
                out.upper_bound >= out.utility - 1e-9,
                "seed {seed} cap {cap}"
            );
            assert!(
                (0.0..=1.0).contains(&out.gap_fraction),
                "seed {seed} cap {cap}: gap {}",
                out.gap_fraction
            );
            let recomputed = if out.upper_bound > 0.0 {
                ((out.upper_bound - out.utility) / out.upper_bound).max(0.0)
            } else {
                0.0
            };
            assert!((out.gap_fraction - recomputed).abs() < 1e-12);
            if cap > 0 {
                assert!(out.largest_shard <= cap.max(1), "seed {seed} cap {cap}");
            }
        }
    }
}
