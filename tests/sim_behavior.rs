//! Simulator behavior across policies: determinism, hard feasibility, and
//! the expected policy ordering under load — including failure injection
//! with a deliberately overcommitting policy.

use mmd::core::{StreamId, UserId};
use mmd::sim::{run, run_with, AdmissionPolicy, PolicyKind, SimConfig, SimState, ThresholdPolicy};
use mmd::workload::{TraceConfig, WorkloadConfig};

/// Failure injection: claims every user for every stream (including users
/// with zero utility), ignoring all budgets. The engine must clip it back
/// to hard feasibility.
struct GreedyLiar;

impl AdmissionPolicy for GreedyLiar {
    fn name(&self) -> &str {
        "greedy-liar"
    }

    fn on_arrival(&mut self, state: &SimState<'_>, _stream: StreamId) -> Vec<UserId> {
        state.instance.users().collect()
    }
}

fn workload(seed: u64, budget_fraction: f64) -> mmd::Instance {
    let mut cfg = WorkloadConfig::default();
    cfg.catalog.streams = 40;
    cfg.population.users = 25;
    cfg.budget_fraction = budget_fraction;
    cfg.generate(seed)
}

#[test]
fn peak_utilization_never_exceeds_one() {
    for seed in 0..4u64 {
        let inst = workload(seed, 0.2);
        let trace = TraceConfig {
            arrival_rate: 3.0,
            mean_duration: 25.0,
            heavy_tail: true,
        }
        .generate(inst.num_streams(), seed);
        for policy in [
            PolicyKind::Online,
            PolicyKind::Threshold { margin: 1.0 },
            PolicyKind::OfflineOracle,
        ] {
            let rep = run(&inst, &trace, policy, &SimConfig::default());
            for &p in &rep.peak_utilization {
                assert!(p <= 1.0 + 1e-9, "{}: peak {p}", rep.policy);
            }
        }
    }
}

#[test]
fn online_beats_threshold_under_heavy_load() {
    // Aggregate over seeds: the utility-aware policy should deliver more.
    let mut online_total = 0.0;
    let mut threshold_total = 0.0;
    for seed in 0..5u64 {
        let inst = workload(seed, 0.15);
        let trace = TraceConfig {
            arrival_rate: 4.0,
            mean_duration: 30.0,
            heavy_tail: true,
        }
        .generate(inst.num_streams(), seed);
        online_total += run(&inst, &trace, PolicyKind::Online, &SimConfig::default()).avg_utility;
        threshold_total += run(
            &inst,
            &trace,
            PolicyKind::Threshold { margin: 0.9 },
            &SimConfig::default(),
        )
        .avg_utility;
    }
    assert!(
        online_total > threshold_total,
        "online {online_total} <= threshold {threshold_total}"
    );
}

#[test]
fn simulation_is_deterministic() {
    let inst = workload(7, 0.3);
    let trace = TraceConfig::default().generate(inst.num_streams(), 7);
    let a = run(&inst, &trace, PolicyKind::Online, &SimConfig::default());
    let b = run(&inst, &trace, PolicyKind::Online, &SimConfig::default());
    assert_eq!(a.utility_integral, b.utility_integral);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.rejected, b.rejected);
}

#[test]
fn run_with_accepts_custom_policies() {
    let inst = workload(3, 0.3);
    let trace = TraceConfig::default().generate(inst.num_streams(), 3);
    let mut policy = ThresholdPolicy { margin: 0.5 };
    let rep = run_with(&inst, &trace, &mut policy, &SimConfig::default());
    assert_eq!(rep.policy, "threshold");
    // Margin 0.5 must keep peak utilization at or below ~0.5 + one stream.
    for &p in &rep.peak_utilization {
        assert!(p <= 0.9, "peak {p} too high for margin 0.5");
    }
}

#[test]
fn utility_integral_scales_with_horizon() {
    let inst = workload(9, 0.4);
    let trace = TraceConfig {
        arrival_rate: 2.0,
        mean_duration: 1e6, // effectively no departures
        heavy_tail: false,
    }
    .generate(inst.num_streams(), 9);
    let rep = run(
        &inst,
        &trace,
        PolicyKind::Threshold { margin: 1.0 },
        &SimConfig {
            horizon: Some(trace.horizon() * 2.0),
            ..SimConfig::default()
        },
    );
    // With no departures, the tail doubles the integral contribution.
    assert!(rep.utility_integral > 0.0);
    assert!(rep.horizon >= trace.horizon() * 2.0 - 1e-9);
}

#[test]
fn engine_clips_overcommitting_policy_to_feasibility() {
    for seed in 0..3u64 {
        let inst = workload(seed, 0.15);
        let trace = TraceConfig {
            arrival_rate: 4.0,
            mean_duration: 40.0,
            heavy_tail: false,
        }
        .generate(inst.num_streams(), seed);
        let mut liar = GreedyLiar;
        let rep = run_with(&inst, &trace, &mut liar, &SimConfig::default());
        // The liar overcommits constantly; the engine must have clipped it
        // (zero-utility users alone guarantee clips on this workload) and
        // still never exceeded any budget.
        assert!(rep.clipped > 0, "seed {seed}: expected clips");
        for &p in &rep.peak_utilization {
            assert!(p <= 1.0 + 1e-9, "seed {seed}: peak {p}");
        }
    }
}

#[test]
fn price_policy_is_feasible_and_selective() {
    for seed in 0..3u64 {
        let inst = workload(seed, 0.15);
        let trace = TraceConfig::default().generate(inst.num_streams(), seed);
        let rep = run(
            &inst,
            &trace,
            PolicyKind::Price { lambda: None },
            &SimConfig::default(),
        );
        for &p in &rep.peak_utilization {
            assert!(p <= 1.0 + 1e-9);
        }
        // A calibrated price rejects the below-average half-ish.
        assert!(rep.rejected > 0, "seed {seed}");
    }
}

#[test]
fn clipped_is_zero_for_well_behaved_policies() {
    for seed in 0..3u64 {
        let inst = workload(seed, 0.25);
        let trace = TraceConfig::default().generate(inst.num_streams(), seed);
        for policy in [PolicyKind::Online, PolicyKind::Threshold { margin: 1.0 }] {
            let rep = run(&inst, &trace, policy, &SimConfig::default());
            assert_eq!(rep.clipped, 0, "{} clipped assignments", rep.policy);
        }
    }
}
