//! Fast regression checks of every theorem's measured bound (the full
//! sweeps live in the experiment binaries; these are the CI-sized
//! versions).

use mmd::core::algo::classify::{solve_smd, ClassifyConfig};
use mmd::core::algo::online::{OnlineAllocator, OnlineConfig};
use mmd::core::algo::reduction::{solve_mmd, MmdConfig};
use mmd::core::algo::shard::{solve_sharded, ShardConfig};
use mmd::core::algo::{self, Feasibility};
use mmd::core::skew::local_skew;
use mmd::exact::{solve, ExactConfig, Objective};
use mmd::workload::special::{
    greedy_hole, small_streams, target_skew_smd, tightness_instance_biased, unit_skew_smd,
    SmdFamilyConfig,
};
use mmd::workload::TraceConfig;

const E: f64 = std::f64::consts::E;

/// Lemma 2.6: greedy ⊕ A_max is (2e/(e−1))-approximate against the
/// semi-feasible optimum.
#[test]
fn lemma_2_6_bound_holds() {
    let bound = 2.0 * E / (E - 1.0);
    for seed in 0..12u64 {
        let inst = unit_skew_smd(&SmdFamilyConfig::default(), seed);
        let opt = solve(&inst, &ExactConfig::default()).unwrap().value;
        if opt <= 0.0 {
            continue;
        }
        let alg = algo::solve_smd_unit(&inst, Feasibility::SemiFeasible)
            .unwrap()
            .utility;
        assert!(
            opt <= alg * bound + 1e-9,
            "seed {seed}: OPT {opt} > {bound} * {alg}"
        );
    }
}

/// Theorem 2.8: the strict solution is (3e/(e−1))-approximate against the
/// feasible optimum.
#[test]
fn theorem_2_8_bound_holds() {
    let bound = 3.0 * E / (E - 1.0);
    for seed in 0..12u64 {
        let inst = unit_skew_smd(&SmdFamilyConfig::default(), seed);
        let opt = solve(
            &inst,
            &ExactConfig {
                objective: Objective::Feasible,
                ..ExactConfig::default()
            },
        )
        .unwrap()
        .value;
        if opt <= 0.0 {
            continue;
        }
        let sol = algo::solve_smd_unit(&inst, Feasibility::Strict).unwrap();
        assert!(sol.assignment.check_feasible(&inst).is_ok());
        assert!(
            opt <= sol.utility * bound + 1e-9,
            "seed {seed}: OPT {opt} vs {}",
            sol.utility
        );
    }
}

/// Theorem 2.5 (resource augmentation form): w(A_{k+1}) >= (1 − 1/e)·OPT⁻,
/// checked with the full-budget OPT as a conservative stand-in refused…
/// rather: w(greedy) + w(A_max) >= (1 − 1/e) OPT (Lemma 2.6's inner step).
#[test]
fn lemma_2_2_augmented_bound_holds() {
    for seed in 0..12u64 {
        let inst = unit_skew_smd(&SmdFamilyConfig::default(), seed);
        let opt = solve(&inst, &ExactConfig::default()).unwrap().value;
        if opt <= 0.0 {
            continue;
        }
        let rep = algo::fixed_greedy::candidate_utilities(&inst).unwrap();
        let lhs = rep.greedy + rep.amax;
        assert!(
            lhs >= (1.0 - 1.0 / E) * opt - 1e-9,
            "seed {seed}: {lhs} < (1-1/e)*{opt}"
        );
    }
}

/// Theorem 3.1: classify-and-select is O(log 2α)-approximate; we assert the
/// explicit constant-free form ratio <= 3·(3e/(e−1))·log₂(2α) + slack.
#[test]
fn theorem_3_1_bound_holds() {
    for &alpha in &[2.0f64, 8.0, 32.0] {
        for seed in 0..6u64 {
            let cfg = SmdFamilyConfig {
                streams: 9,
                users: 4,
                density: 0.6,
                budget_fraction: 0.4,
            };
            let inst = target_skew_smd(&cfg, alpha, seed);
            let measured_alpha = local_skew(&inst);
            let opt = solve(
                &inst,
                &ExactConfig {
                    objective: Objective::Feasible,
                    ..ExactConfig::default()
                },
            )
            .unwrap()
            .value;
            if opt <= 0.0 {
                continue;
            }
            let out = solve_smd(&inst, &ClassifyConfig::default()).unwrap();
            assert!(out.assignment.check_feasible(&inst).is_ok());
            let bound = 3.0 * (3.0 * E / (E - 1.0)) * (2.0 * measured_alpha).log2().max(1.0);
            let ratio = opt / out.utility.max(1e-12);
            assert!(
                ratio <= bound,
                "alpha {alpha} seed {seed}: ratio {ratio} > bound {bound}"
            );
        }
    }
}

/// Theorem 4.3/§4.2: the faithful transform loses at most ~m·m_c on the
/// tightness instance, and the measured loss is close to it (tight).
#[test]
fn tightness_loss_matches_m_mc() {
    for &(m, mc) in &[(2usize, 2usize), (3, 2), (4, 2)] {
        let inst = tightness_instance_biased(m, mc, 0.01);
        let opt = (m - 1) as f64 + 1.01;
        let faithful = solve_mmd(
            &inst,
            &MmdConfig {
                residual_fill: false,
                faithful_output_transform: true,
                ..MmdConfig::default()
            },
        )
        .unwrap();
        let loss = opt / faithful.utility.max(1e-12);
        assert!(
            loss <= (m * mc) as f64 + 0.5,
            "(m={m},mc={mc}): loss {loss} exceeds m*mc"
        );
        // The default pipeline recovers the optimum here.
        let default = solve_mmd(&inst, &MmdConfig::default()).unwrap();
        assert!((default.utility - opt).abs() < 1e-6);
    }
}

/// Theorem 5.4 + Lemma 5.1: online Allocate stays feasible and within
/// (1 + 2 log µ) of the semi-feasible optimum on small-stream instances.
#[test]
fn theorem_5_4_bound_holds() {
    for seed in 0..6u64 {
        let inst = small_streams(18, 4, 1, seed);
        let order = TraceConfig::default()
            .generate(inst.num_streams(), seed)
            .arrival_order();
        let report = OnlineAllocator::run(&inst, order, OnlineConfig::default()).unwrap();
        assert!(report.smallness.ok, "seed {seed}: hypothesis violated");
        assert!(
            report.assignment.check_feasible(&inst).is_ok(),
            "seed {seed}: lemma 5.1 violated"
        );
        let opt = solve(&inst, &ExactConfig::default()).unwrap().value;
        if opt <= 0.0 || report.utility <= 0.0 {
            continue;
        }
        let bound = 1.0 + 2.0 * report.smallness.log_mu;
        let ratio = opt / report.utility;
        assert!(ratio <= bound, "seed {seed}: ratio {ratio} > bound {bound}");
    }
}

/// Corollary 2.7 / Theorem 2.9: semi-feasible solutions fit within the
/// resource-augmented capacities `K^u + k̄^u`.
#[test]
fn semi_feasible_fits_augmented_capacities() {
    for seed in 0..12u64 {
        let inst = unit_skew_smd(&SmdFamilyConfig::default(), seed);
        let semi = algo::solve_smd_unit(&inst, Feasibility::SemiFeasible).unwrap();
        assert!(
            semi.assignment.check_feasible_augmented(&inst).is_ok(),
            "seed {seed}: semi-feasible output exceeds K + k̄"
        );
    }
}

/// The sharded outcome's certificate is a valid bracket of the true
/// optimum: `utility ≤ OPT ≤ upper_bound`, at every shard cap — including
/// caps that force cuts, whose mass enters the upper bound. Checked
/// against `mmd-exact` on instances small enough to solve exactly
/// (≤ 12 streams).
#[test]
fn sharded_gap_is_valid_versus_exact() {
    use mmd::workload::{CatalogConfig, ClusteredConfig, PopulationConfig, WorkloadConfig};
    let exact_cfg = ExactConfig {
        objective: Objective::Feasible,
        max_user_degree: 30,
        ..ExactConfig::default()
    };
    // Connected contended workloads and clustered ones, several seeds.
    let mut instances = Vec::new();
    for seed in 0..6u64 {
        instances.push(
            WorkloadConfig {
                catalog: CatalogConfig {
                    streams: 12,
                    measures: 1,
                    ..CatalogConfig::default()
                },
                population: PopulationConfig {
                    users: 6,
                    user_measures: 1,
                    ..PopulationConfig::default()
                },
                budget_fraction: 0.4,
                ..WorkloadConfig::default()
            }
            .generate(seed),
        );
        instances.push(ClusteredConfig::contended(3, 4, 3).generate(seed));
    }
    let mut forced_cuts = 0usize;
    for (idx, inst) in instances.iter().enumerate() {
        let opt = solve(inst, &exact_cfg).unwrap().value;
        for cap in [0usize, 3, 6] {
            let out = solve_sharded(
                inst,
                &ShardConfig {
                    max_streams: cap,
                    ..ShardConfig::default()
                },
            )
            .unwrap();
            assert!(
                out.assignment.check_feasible(inst).is_ok(),
                "inst {idx} cap {cap}"
            );
            assert!(
                out.utility <= opt + 1e-6 * opt.max(1.0),
                "inst {idx} cap {cap}: lower bound {} above OPT {opt}",
                out.utility
            );
            assert!(
                opt <= out.upper_bound + 1e-6 * opt.max(1.0),
                "inst {idx} cap {cap}: OPT {opt} above certificate {} (cut mass {})",
                out.upper_bound,
                out.cut_mass
            );
            forced_cuts += out.cut_edges;
        }
    }
    // The sweep must actually have exercised the cut-mass term.
    assert!(forced_cuts > 0, "no cap forced any cut: weak test");
}

/// §2.2 hole: the fix is worth an unbounded factor over plain greedy.
#[test]
fn hole_quantifies_the_fix() {
    let inst = greedy_hole();
    let plain = algo::greedy(&inst).unwrap().utility;
    let fixed = algo::solve_smd_unit(&inst, Feasibility::SemiFeasible)
        .unwrap()
        .utility;
    assert_eq!(plain, 10.0);
    assert_eq!(fixed, 500.0);
}
