//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro + builder surface this workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], benchmark groups with
//! throughput annotations) and measures plain wall-clock time: a short
//! warm-up, then batches of iterations until a time target is reached,
//! reporting the mean per-iteration time. No statistics, plots or reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(20),
            measure: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self.warm_up, self.measure, &mut f);
        print_report(name, &report, None);
        self
    }
}

/// A named benchmark id within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput recorded for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.criterion.warm_up, self.criterion.measure, &mut |b| {
            f(b, input)
        });
        print_report(&format!("{}/{}", self.name, id.id), &report, self.throughput);
        self
    }

    /// Benchmarks a function with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self.criterion.warm_up, self.criterion.measure, &mut f);
        print_report(&format!("{}/{name}", self.name), &report, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the scheduled number of iterations, timing the whole
    /// batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean: Duration,
}

fn run_bench<F: FnMut(&mut Bencher)>(warm_up: Duration, measure: Duration, f: &mut F) -> Report {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also calibrates the per-iteration cost.
    let mut per_iter = Duration::from_nanos(1);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = per_iter.max(b.elapsed);
        warm_iters += 1;
    }
    // Measurement: one batch sized to fill the measurement budget.
    let iters = (measure.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    Report {
        mean: b.elapsed / iters.max(1) as u32,
    }
}

fn print_report(id: &str, report: &Report, throughput: Option<Throughput>) {
    let mean = report.mean;
    let rate = throughput.map(|t| {
        let per_sec = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => {
                n as f64 / mean.as_secs_f64().max(1e-12)
            }
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        format!("  ({per_sec:.3e} {unit})")
    });
    println!(
        "bench: {id:<40} time: {:>12.3?}{}",
        mean,
        rate.unwrap_or_default()
    );
}

/// Declares a function running the listed benchmarks with a default
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; accept and ignore.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(175).id, "175");
    }
}
