//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range / tuple / [`any`] strategies, [`Strategy::prop_map`],
//! [`collection::vec`], and the `prop_assert*` macros. Cases are generated
//! from a per-case deterministic seed; there is **no shrinking** — a
//! failing case panics with the case number so it can be replayed.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for the `case`-th test case of a run.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Run configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, i64, i32);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

impl_range_strategy_float!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; this stand-in
/// has no shrinking, so it behaves like `assert!` with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!([$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!([$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: one generated test per `fn`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$config:expr]) => {};
    ([$config:expr]
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(u64::from(case));
                let rng = &mut rng;
                let run = || {
                    $crate::__proptest_bind!(rng; $body; $($args)*);
                };
                if let Err(payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                {
                    eprintln!(
                        "proptest stand-in: property `{}` failed on case {case}/{}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!([$config] $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy`
/// arguments one at a time (strategy expressions are munched token by
/// token up to the next top-level comma), then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $body:block;) => { $body };
    ($rng:ident; $body:block; $pat:pat in $($rest:tt)*) => {
        $crate::__proptest_expr!($rng; $body; ($pat); []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_expr {
    ($rng:ident; $body:block; ($pat:pat); [$($acc:tt)*]; , $($rest:tt)*) => {{
        let $pat = $crate::Strategy::generate(&($($acc)*), $rng);
        $crate::__proptest_bind!($rng; $body; $($rest)*);
    }};
    ($rng:ident; $body:block; ($pat:pat); [$($acc:tt)*];) => {{
        let $pat = $crate::Strategy::generate(&($($acc)*), $rng);
        $body
    }};
    ($rng:ident; $body:block; ($pat:pat); [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::__proptest_expr!($rng; $body; ($pat); [$($acc)* $next]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(3);
        let strat = (1usize..5, 0.0f64..1.0, any::<bool>());
        for _ in 0..1000 {
            let (a, b, _c) = crate::Strategy::generate(&strat, &mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::for_case(0);
        let strat = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_case(1);
        let strat = crate::collection::vec(0.0f64..2.0, 0..24);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 24);
            assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::TestRng::for_case(case);
            crate::Strategy::generate(&(0u64..1000), &mut rng)
        };
        assert_eq!(draw(5), draw(5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_single_arg(x in 0usize..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn macro_multi_arg_with_calls(
            v in crate::collection::vec((0usize..4, any::<bool>()), 0..10),
            y in 0.5f64..4.0,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert_ne!(y, 4.0);
            for (a, _b) in v {
                prop_assert!(a < 4);
            }
        }
    }
}
