//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides exactly the surface this workspace uses: a seedable,
//! deterministic [`rngs::StdRng`], the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom`]'s
//! `shuffle` / `choose`. See `vendor/README.md` for the rationale.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough integer draw from `[0, bound)` via 128-bit
/// multiply-shift.
fn mul_shift<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Value types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128) - (low as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                low.wrapping_add(mul_shift(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "cannot sample empty range"
                );
                let x = low + (high - low) * unit_f64(rng) as $t;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && x >= high {
                    low
                } else {
                    x
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: SplitMix64. Small state, solid
    /// 64-bit output mixing; plenty for seeded test workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Slice extensions.

    use super::{mul_shift, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = mul_shift(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[mul_shift(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&z));
            let w = rng.gen_range(5..=5u64);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
