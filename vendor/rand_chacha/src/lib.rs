//! Offline stand-in for the `rand_chacha` crate: a real ChaCha block
//! function driving the `rand` stand-in's [`RngCore`] / [`SeedableRng`]
//! traits. Deterministic and portable; the keystream matches the ChaCha
//! specification (RFC 8439 block function with a 64-bit counter).

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            block: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.block = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.block[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    block: [0; 16],
                    index: 16,
                }
            }

            fn seed_from_u64(state: u64) -> Self {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&state.to_le_bytes());
                Self::from_seed(seed)
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast seeded generator.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the full-strength variant).
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chacha20_zero_key_test_vector() {
        // Classic ChaCha20 keystream vector: all-zero key and nonce,
        // counter 0 → keystream starts 76 b8 e0 ad a0 f1 3d 90 …
        let block = chacha_block(&[0u32; 8], 0, 20);
        assert_eq!(block[0], 0xade0_b876);
        assert_eq!(block[1], 0x903d_f1a0);
    }

    #[test]
    fn works_with_rng_extensions() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
        }
    }
}
