//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based data model this stand-in uses a single
//! concrete [`Value`] tree (the JSON data model): [`Serialize`] converts a
//! type into a `Value`, [`Deserialize`] reconstructs it from one. There is
//! no derive macro — the workspace hand-implements the traits for the few
//! types it persists (see `mmd_core::instance`).

use std::fmt;

/// A JSON-shaped value tree: the whole data model of this stand-in.
///
/// Numbers are `f64` (as in JSON); objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object (ordered key–value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor: "expected X, found Y".
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Convenience constructor: missing object field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(x) => Ok(*x),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_for_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    other => Err(DeError::expected("nonnegative integer", other)),
                }
            }
        }
    )*};
}

impl_for_int!(usize, u64, u32);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(2.0)),
            Ok(Some(2.0))
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let tree = v.to_value();
        assert_eq!(Vec::<(usize, f64)>::from_value(&tree), Ok(v));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(f64::from_value(&Value::Bool(true)).is_err());
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Number(1.0)).is_err());
        assert_eq!(DeError::missing("x").0, "missing field `x`");
    }

    #[test]
    fn object_get() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(obj.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(obj.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
