//! Offline stand-in for the `serde_json` crate: a strict JSON parser and
//! printer over the `serde` stand-in's [`Value`] data model.
//!
//! Entry points mirror the real crate: [`to_string`], [`to_string_pretty`],
//! [`from_str`], with a structured [`Error`] type.

use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error with byte-offset context for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn shape(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::shape(e.0)
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite number outside a
/// `null`-encoding wrapper (JSON cannot represent infinities or NaN).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON (with a byte offset) or when the
/// parsed tree does not match `T`'s expected shape.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => {
            if !x.is_finite() {
                return Err(Error::shape(format!("cannot serialize number {x}")));
            }
            // `{:?}` is the shortest representation that round-trips and
            // always keeps a decimal point (10.0 → "10.0").
            out.push_str(&format!("{x:?}"));
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error::parse(format!("expected `{token}`"), *pos))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&first) = bytes.get(*pos) else {
        return Err(Error::parse("unexpected end of input", *pos));
    };
    match first {
        b'n' => expect(bytes, pos, "null").map(|()| Value::Null),
        b't' => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::parse("expected `,` or `]`", *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                entries.push((key, parse_at(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::parse("expected `,` or `}`", *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(Error::parse("unexpected character", *pos)),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::parse("invalid number", start))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::parse("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::parse("unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::parse("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        let scalar = if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: a low surrogate escape must
                            // follow; combine them into one scalar value.
                            if bytes.get(*pos..*pos + 2) != Some(b"\\u") {
                                return Err(Error::parse("unpaired surrogate", *pos));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(Error::parse("unpaired surrogate", *pos));
                            }
                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| Error::parse("bad \\u escape", *pos))?,
                        );
                    }
                    _ => return Err(Error::parse("unknown escape", *pos)),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at b.
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let start = *pos - 1;
                let chunk = bytes
                    .get(start..start + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| Error::parse("invalid utf-8", start))?;
                out.push_str(chunk);
                *pos = start + len;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| Error::parse("bad \\u escape", *pos))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| Error::parse("bad \\u escape", *pos))?;
    *pos += 4;
    Ok(code)
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structure() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b\\c\nd".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("obj".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&Value::Number(10.0)).unwrap(), "10.0");
        assert_eq!(to_string(&Value::Number(0.5)).unwrap(), "0.5");
    }

    #[test]
    fn rejects_non_finite_numbers() {
        assert!(to_string(&Value::Number(f64::INFINITY)).is_err());
        assert!(to_string(&Value::Number(f64::NAN)).is_err());
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(from_str::<Value>("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            from_str::<Value>(r#""aA\t""#).unwrap(),
            Value::String("aA\t".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{nope", "[1,", "\"unterminated", "1 2", "nulL", ""] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_mentions_offset() {
        let err = from_str::<Value>("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Number(1.0)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1.0\n  ]\n}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Python json.dumps writes U+1F600 as \ud83d\ude00.
        assert_eq!(
            from_str::<Value>(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1f600}".into())
        );
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83d\u0041""#, r#""\udc00""#] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad}");
        }
    }
}
